#include "fleet/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "fleet/arena.hpp"
#include "support/diag.hpp"
#include "support/hostinfo.hpp"
#include "support/simd.hpp"

namespace pscp::fleet {

namespace {
// Static empty event list for every non-first cycle of an epoch, so the
// per-cycle call passes a reference without building a vector.
const std::vector<int> kNoEvents;

// Bucket bounds for the per-instance machine-cycles-per-epoch histogram;
// shared by every worker registry so mergedMetrics() can fold them.
std::vector<int64_t> epochCycleBounds() {
  return {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
}
}  // namespace

// ------------------------------------------------------- internal structs

struct Fleet::Instance {
  Instance(const ChartImagePtr& image, InstanceId instanceId, size_t queueCapacity)
      : id(instanceId), machine(image), queue(queueCapacity) {
    drained.reserve(queue.capacity());
  }

  InstanceId id;
  machine::PscpMachine machine;
  SpscQueue<int32_t> queue;
  std::atomic<int64_t> dropped{0};  ///< producer-side full-queue rejections

  // Worker-private per-epoch scratch (exactly one worker touches an
  // instance per epoch; the epoch barrier publishes writes between epochs).
  std::vector<int> drained;
  machine::CycleStats stats;  ///< reused; fired kept allocated across cycles
  int64_t droppedSeen = 0;    ///< last `dropped` value folded into telemetry

  // Lifetime accounting (read by snapshot() between epochs).
  int64_t machineCycles = 0;
  int64_t configCycles = 0;
  int64_t quiescentCycles = 0;
  int64_t firedTransitions = 0;
  int64_t busStallCycles = 0;
  int64_t eventsDelivered = 0;

  std::vector<machine::PortWrite> portLog;  ///< when capturePortWrites
};

struct Fleet::Shard {
  std::vector<Instance*> members;

  // SoA batching state (sized in rebuildShards, untouched when the fleet
  // runs with soaBatching off). A lane's arena row is valid when its
  // dirty flag is clear; scalar fallback cycles set it again. Writes are
  // lane-disjoint, so stealing workers never race even when a steal
  // boundary splits a cacheline.
  ShardArena arena;
  std::vector<uint8_t> arenaDirty;
  // Per-lane epoch accumulators for the cycle-major batched loop (the
  // scalar path keeps these in locals; cycle-major order needs them to
  // survive across the cycle loop).
  std::vector<int64_t> epochMachineCycles;
  std::vector<int64_t> epochFired;

  alignas(64) std::atomic<size_t> cursor{0};
};

/// Per-epoch, per-worker accumulator: plain int64s bumped in the hot loop
/// and flushed through cached registry pointers once per epoch, so the
/// stepping path touches no map, no string and no allocator.
struct Fleet::WorkerLocal {
  int64_t machineCycles = 0;
  int64_t configCycles = 0;
  int64_t quiescentCycles = 0;
  int64_t firedTransitions = 0;
  int64_t busStallCycles = 0;
  int64_t eventsDelivered = 0;
  int64_t stealChunks = 0;
  int64_t instancesStepped = 0;
  obs::Histogram* cyclesPerEpoch = nullptr;

  // Telemetry (ring == nullptr when the plane is disarmed: the hot loop's
  // single predictable check).
  obs::FlightRing* ring = nullptr;
  int64_t epoch = 0;
  int64_t queueDepthHwm = 0;
  int64_t drops = 0;
  int64_t portWrites = 0;
};

/// Registry references resolved once at construction: the per-epoch flush
/// must not do string-keyed map lookups (they allocate — the steady-state
/// counting-operator-new test holds the fleet to zero).
struct Fleet::WorkerMetricRefs {
  int64_t* machineCycles = nullptr;
  int64_t* configCycles = nullptr;
  int64_t* quiescentCycles = nullptr;
  int64_t* firedTransitions = nullptr;
  int64_t* busStallCycles = nullptr;
  int64_t* eventsDelivered = nullptr;
  int64_t* stealChunks = nullptr;
  int64_t* epochTasks = nullptr;
  obs::Histogram* cyclesPerEpoch = nullptr;
};

/// One cacheline-aligned block of health atomics per worker. Only the
/// owning worker writes (plain read-modify-write on relaxed atomics, no
/// CAS needed); any thread reads at any time via healthSnapshot().
struct Fleet::ShardTelemetry {
  alignas(64) std::atomic<int64_t> epochs{0};
  std::atomic<int64_t> epochStartNanos{0};  ///< 0 when no epoch in flight
  std::atomic<int64_t> lastEpochNanos{0};
  std::atomic<int64_t> ewmaEpochNanos{0};
  std::atomic<int64_t> minEpochNanos{0};
  std::atomic<int64_t> maxEpochNanos{0};
  std::atomic<int64_t> sumEpochNanos{0};
  std::atomic<int64_t> machineCycles{0};
  std::atomic<int64_t> configCycles{0};
  std::atomic<int64_t> firedTransitions{0};
  std::atomic<int64_t> eventsDelivered{0};
  std::atomic<int64_t> eventsDropped{0};
  std::atomic<int64_t> stealChunks{0};
  std::atomic<int64_t> queueDepthHwm{0};
  std::atomic<int64_t> instancesStepped{0};
  std::atomic<int64_t> portWrites{0};
  std::atomic<int64_t> epochNanosCounts[obs::kEpochNanosBucketCount] = {};
};

/// The epoch barrier: workers park on a condition variable and run one
/// epoch each time the generation counter advances; the caller waits for
/// the last worker to check in.
struct Fleet::Pool {
  std::mutex mu;
  std::condition_variable start;
  std::condition_variable done;
  uint64_t generation = 0;
  int cyclesThisEpoch = 0;
  int64_t epochThisGeneration = 0;
  size_t running = 0;
  bool stop = false;
  std::vector<std::thread> threads;
};

// ----------------------------------------------------------------- Fleet

Fleet::Fleet(ChartImagePtr image, FleetConfig config)
    : image_(std::move(image)), config_(config) {
  PSCP_ASSERT(image_ != nullptr);
  if (config_.workerThreads < 1) config_.workerThreads = 1;
  if (config_.stealChunk < 1) config_.stealChunk = 1;
  // A lane group yields one uint64 selection bitmask; 0 = auto (whole
  // group per decode pass).
  if (config_.batchWidth < 1 || config_.batchWidth > 64) config_.batchWidth = 64;
  workerCount_ = static_cast<size_t>(config_.workerThreads);
  workerMetrics_.resize(workerCount_);
  workerMetricRefs_.resize(workerCount_);
  for (size_t w = 0; w < workerCount_; ++w) {
    obs::MetricsRegistry& reg = workerMetrics_[w];
    WorkerMetricRefs& refs = workerMetricRefs_[w];
    refs.machineCycles = &reg.counter("fleet.machine_cycles");
    refs.configCycles = &reg.counter("fleet.config_cycles");
    refs.quiescentCycles = &reg.counter("fleet.quiescent_cycles");
    refs.firedTransitions = &reg.counter("fleet.fired_transitions");
    refs.busStallCycles = &reg.counter("fleet.bus_stall_cycles");
    refs.eventsDelivered = &reg.counter("fleet.events_delivered");
    refs.stealChunks = &reg.counter("fleet.steal_chunks");
    refs.epochTasks = &reg.counter("fleet.epoch_tasks");
    refs.cyclesPerEpoch =
        &reg.histogram("fleet.instance_cycles_per_epoch", epochCycleBounds());
  }
  if (config_.telemetry) {
    if (config_.flightRecordsPerShard < 1) config_.flightRecordsPerShard = 1;
    flight_ = std::make_unique<obs::FlightRecorder>(
        workerCount_, config_.flightRecordsPerShard);
    shardTelemetry_ = std::make_unique<ShardTelemetry[]>(workerCount_);
  }
  if (config_.journal) {
    journal_ = std::make_unique<obs::journal::Journal>(config_.journalConfig);
    journal_->setChartName(image_->chart().name());
    journal_->setImageHash(obs::journal::imageContentHash(*image_));
    journal_->setEventQueueCapacity(
        static_cast<int64_t>(config_.eventQueueCapacity));
    journal_->setRecordedWorkers(config_.workerThreads);
    journal_->setRecordedSoa(config_.soaBatching);
    journal_->setSimdLevel(simdLevelName(activeSimdLevel()));
  }
  if (workerCount_ > 1) {
    pool_ = std::make_unique<Pool>();
    pool_->threads.reserve(workerCount_);
    for (size_t w = 0; w < workerCount_; ++w)
      pool_->threads.emplace_back([this, w] { workerLoop(w); });
  }
}

Fleet::~Fleet() {
  if (pool_ != nullptr) {
    {
      std::lock_guard<std::mutex> lk(pool_->mu);
      pool_->stop = true;
    }
    pool_->start.notify_all();
    for (std::thread& t : pool_->threads) t.join();
  }
}

// -------------------------------------------------------------- lifecycle

InstanceId Fleet::spawn() {
  const InstanceId id = static_cast<InstanceId>(instances_.size());
  instances_.push_back(
      std::make_unique<Instance>(image_, id, config_.eventQueueCapacity));
  instances_.back()->machine.setJitMode(config_.jitMode);
  instances_.back()->machine.setJitThreshold(config_.jitThreshold);
  liveCount_.fetch_add(1, std::memory_order_relaxed);
  shardsDirty_ = true;
  if (journal_ != nullptr) journal_->recordSpawn(static_cast<int64_t>(id));
  return id;
}

std::vector<InstanceId> Fleet::spawnMany(size_t count) {
  std::vector<InstanceId> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) ids.push_back(spawn());
  return ids;
}

void Fleet::retire(InstanceId id) {
  liveInstance(id);  // asserts liveness
  instances_[static_cast<size_t>(id)].reset();
  liveCount_.fetch_sub(1, std::memory_order_relaxed);
  shardsDirty_ = true;
  if (journal_ != nullptr) journal_->recordRetire(static_cast<int64_t>(id));
}

bool Fleet::isLive(InstanceId id) const {
  return id < instances_.size() && instances_[static_cast<size_t>(id)] != nullptr;
}

Fleet::Instance& Fleet::liveInstance(InstanceId id) {
  PSCP_ASSERT(isLive(id) && "unknown or retired fleet instance id");
  return *instances_[static_cast<size_t>(id)];
}

const Fleet::Instance& Fleet::liveInstance(InstanceId id) const {
  PSCP_ASSERT(isLive(id) && "unknown or retired fleet instance id");
  return *instances_[static_cast<size_t>(id)];
}

// -------------------------------------------------------------- injection

int Fleet::eventId(const std::string& eventName) const {
  return image_->layout().eventBit(eventName);
}

bool Fleet::inject(InstanceId id, int eventBit) {
  if (!isLive(id)) return false;
  Instance& inst = *instances_[static_cast<size_t>(id)];
  if (inst.queue.tryPush(eventBit)) return true;
  inst.dropped.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool Fleet::injectByName(InstanceId id, const std::string& eventName) {
  return inject(id, eventId(eventName));
}

// --------------------------------------------------------------- stepping

void Fleet::rebuildShards() {
  shards_.clear();
  shards_.reserve(workerCount_);
  for (size_t w = 0; w < workerCount_; ++w)
    shards_.push_back(std::make_unique<Shard>());
  // Contiguous block placement (cache-aware): shard w owns a consecutive
  // run of live instances, so its SoA arena lanes are stepped in spawn
  // order by one worker streaming one contiguous buffer — round-robin
  // placement would interleave every shard's lanes through memory.
  std::vector<Instance*> live;
  live.reserve(instances_.size());
  for (const auto& inst : instances_)
    if (inst != nullptr) live.push_back(inst.get());
  const size_t base = live.size() / workerCount_;
  const size_t extra = live.size() % workerCount_;
  size_t next = 0;
  for (size_t w = 0; w < workerCount_; ++w) {
    const size_t take = base + (w < extra ? 1 : 0);
    Shard& shard = *shards_[w];
    shard.members.assign(live.begin() + static_cast<ptrdiff_t>(next),
                         live.begin() + static_cast<ptrdiff_t>(next + take));
    next += take;
    if (config_.soaBatching) {
      const size_t crWords =
          (static_cast<size_t>(image_->layout().totalBits()) + 63) / 64;
      shard.arena.resize(shard.members.size(), crWords);
      shard.arenaDirty.assign(shard.members.size(), 1);
      shard.epochMachineCycles.assign(shard.members.size(), 0);
      shard.epochFired.assign(shard.members.size(), 0);
    }
  }
  shardsDirty_ = false;
}

void Fleet::stepInstance(Instance& inst, int cycles, WorkerLocal& local) {
  // Deliver everything injected before this epoch at its first cycle.
  inst.drained.clear();
  int32_t event = 0;
  while (inst.queue.tryPop(&event)) inst.drained.push_back(event);
  const int64_t drainedCount = static_cast<int64_t>(inst.drained.size());
  inst.eventsDelivered += drainedCount;
  local.eventsDelivered += drainedCount;

  int64_t epochMachineCycles = 0;
  int64_t epochFired = 0;
  for (int c = 0; c < cycles; ++c) {
    inst.machine.configurationCycleIds(c == 0 ? inst.drained : kNoEvents,
                                       &inst.stats);
    epochMachineCycles += inst.stats.cycles;
    inst.busStallCycles += inst.stats.busStallCycles;
    epochFired += static_cast<int64_t>(inst.stats.fired.size());
    local.busStallCycles += inst.stats.busStallCycles;
    if (inst.stats.quiescent) {
      ++inst.quiescentCycles;
      ++local.quiescentCycles;
    }
  }
  finishInstanceEpoch(inst, cycles, epochMachineCycles, epochFired, drainedCount,
                      local);
}

void Fleet::finishInstanceEpoch(Instance& inst, int cycles,
                                int64_t epochMachineCycles, int64_t epochFired,
                                int64_t drainedCount, WorkerLocal& local) {
  inst.firedTransitions += epochFired;
  local.firedTransitions += epochFired;
  inst.machineCycles += epochMachineCycles;
  inst.configCycles += cycles;
  local.machineCycles += epochMachineCycles;
  local.configCycles += cycles;
  local.instancesStepped += 1;
  local.cyclesPerEpoch->record(epochMachineCycles);

  if (local.ring != nullptr) {  // telemetry armed: the one extra branch
    if (drainedCount > local.queueDepthHwm) local.queueDepthHwm = drainedCount;
    const int64_t droppedNow = inst.dropped.load(std::memory_order_relaxed);
    if (droppedNow != inst.droppedSeen) {
      local.drops += droppedNow - inst.droppedSeen;
      inst.droppedSeen = droppedNow;
      local.ring->push(obs::FlightKind::kDrops, local.epoch,
                       static_cast<int64_t>(inst.id), droppedNow, 0, 0);
    }
    local.ring->push(obs::FlightKind::kInstance, local.epoch,
                     static_cast<int64_t>(inst.id), epochMachineCycles,
                     epochFired, drainedCount);
    for (const machine::PortWrite& w : inst.machine.portWrites()) {
      local.ring->push(obs::FlightKind::kPortWrite, local.epoch,
                       static_cast<int64_t>(inst.id), w.port,
                       static_cast<int64_t>(w.value), w.configCycle);
      ++local.portWrites;
    }
  }

  if (config_.capturePortWrites) {
    const std::vector<machine::PortWrite>& writes = inst.machine.portWrites();
    inst.portLog.insert(inst.portLog.end(), writes.begin(), writes.end());
  }
  inst.machine.clearPortWrites();
}

void Fleet::stepChunkBatched(Shard& shard, size_t begin, size_t end, int cycles,
                             WorkerLocal& local) {
  const sla::BatchedSla& batched = image_->batchedSla();
  const sla::CrSoa soa = shard.arena.view();
  const size_t group = static_cast<size_t>(config_.batchWidth);

  // Epoch-start drain, same delivery point as the scalar path (cycle 0).
  for (size_t i = begin; i < end; ++i) {
    Instance& inst = *shard.members[i];
    inst.drained.clear();
    int32_t event = 0;
    while (inst.queue.tryPop(&event)) inst.drained.push_back(event);
    const int64_t drainedCount = static_cast<int64_t>(inst.drained.size());
    inst.eventsDelivered += drainedCount;
    local.eventsDelivered += drainedCount;
    shard.epochMachineCycles[i] = 0;
    shard.epochFired[i] = 0;
  }

  // Cycle-major over lane groups: one vector decode answers "who selects
  // anything" for the whole group, and only lanes with work (a non-empty
  // selection, pending/drained events, a matured timer, an observer)
  // enter the scalar machine step. A lane's arena row is packed lazily —
  // once on first eligibility, and again only after a scalar fallback
  // cycle dirtied it — so a quiescent steady state runs pure decode with
  // zero copying.
  for (int c = 0; c < cycles; ++c) {
    for (size_t g = begin; g < end; g += group) {
      const size_t gEnd = std::min(g + group, end);
      uint64_t eligible = 0;
      for (size_t i = g; i < gEnd; ++i) {
        Instance& inst = *shard.members[i];
        if (c == 0 && !inst.drained.empty()) continue;
        if (!inst.machine.nextCycleIsPureDecode()) continue;
        eligible |= uint64_t{1} << (i - g);
        if (shard.arenaDirty[i] != 0) {
          shard.arena.pack(i, inst.machine.crBits());
          shard.arenaDirty[i] = 0;
        }
      }
      // Ineligible lanes may hold stale rows; the kernel reads them (the
      // block is evaluated whole) but their selection bits are ignored.
      const uint64_t selected =
          eligible == 0 ? 0 : batched.selectedLanes(soa, g, gEnd - g);
      for (size_t i = g; i < gEnd; ++i) {
        Instance& inst = *shard.members[i];
        const uint64_t bit = uint64_t{1} << (i - g);
        if ((eligible & bit) != 0 && (selected & bit) == 0) {
          inst.machine.applyQuiescentCycle(&inst.stats);
        } else {
          inst.machine.configurationCycleIds(c == 0 ? inst.drained : kNoEvents,
                                             &inst.stats);
          shard.arenaDirty[i] = 1;
        }
        shard.epochMachineCycles[i] += inst.stats.cycles;
        inst.busStallCycles += inst.stats.busStallCycles;
        shard.epochFired[i] += static_cast<int64_t>(inst.stats.fired.size());
        local.busStallCycles += inst.stats.busStallCycles;
        if (inst.stats.quiescent) {
          ++inst.quiescentCycles;
          ++local.quiescentCycles;
        }
      }
    }
  }

  for (size_t i = begin; i < end; ++i) {
    Instance& inst = *shard.members[i];
    finishInstanceEpoch(inst, cycles, shard.epochMachineCycles[i],
                        shard.epochFired[i],
                        static_cast<int64_t>(inst.drained.size()), local);
  }
}

void Fleet::runWorkerEpoch(size_t worker, int cycles, int64_t epoch) {
  const WorkerMetricRefs& refs = workerMetricRefs_[worker];
  WorkerLocal local;
  local.cyclesPerEpoch = refs.cyclesPerEpoch;

  const bool armed = flight_ != nullptr;
  int64_t epochStart = 0;
  if (armed) {
    local.ring = &flight_->ring(worker);
    local.epoch = epoch;
    epochStart = obs::nowMonotonicNanos();
    shardTelemetry_[worker].epochStartNanos.store(epochStart,
                                                  std::memory_order_relaxed);
    local.ring->push(obs::FlightKind::kEpochBegin, epoch, cycles,
                     static_cast<int64_t>(liveCount_.load(std::memory_order_relaxed)),
                     0, 0);
    // Fault injection sleeps *inside* the measured epoch so a snapshot
    // taken meanwhile sees it as in-flight time (the stall signal).
    if (config_.debugStallShard == static_cast<int>(worker) &&
        config_.debugStallMicros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.debugStallMicros));
    }
  }

  const size_t chunk = config_.stealChunk;
  const size_t shardCount = shards_.size();
  // Own shard first, then sweep the others stealing leftover chunks.
  for (size_t offset = 0; offset < shardCount; ++offset) {
    const size_t victim = (worker + offset) % shardCount;
    Shard& shard = *shards_[victim];
    for (;;) {
      const size_t begin = shard.cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= shard.members.size()) break;
      const size_t end = std::min(begin + chunk, shard.members.size());
      if (config_.soaBatching) {
        stepChunkBatched(shard, begin, end, cycles, local);
      } else {
        for (size_t i = begin; i < end; ++i)
          stepInstance(*shard.members[i], cycles, local);
      }
      if (offset != 0) {
        ++local.stealChunks;
        if (local.ring != nullptr)
          local.ring->push(obs::FlightKind::kSteal, epoch,
                           static_cast<int64_t>(victim),
                           static_cast<int64_t>(begin),
                           static_cast<int64_t>(end - begin), 0);
      }
    }
  }

  *refs.machineCycles += local.machineCycles;
  *refs.configCycles += local.configCycles;
  *refs.quiescentCycles += local.quiescentCycles;
  *refs.firedTransitions += local.firedTransitions;
  *refs.busStallCycles += local.busStallCycles;
  *refs.eventsDelivered += local.eventsDelivered;
  *refs.stealChunks += local.stealChunks;
  *refs.epochTasks += 1;

  if (armed) {
    const int64_t durNanos = obs::nowMonotonicNanos() - epochStart;
    ShardTelemetry& st = shardTelemetry_[worker];
    // Single-writer block: load/compute/store on relaxed atomics is safe;
    // concurrent readers see any consistent-enough interleaving.
    const auto bump = [](std::atomic<int64_t>& a, int64_t delta) {
      a.store(a.load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
    };
    st.epochStartNanos.store(0, std::memory_order_relaxed);
    st.lastEpochNanos.store(durNanos, std::memory_order_relaxed);
    const int64_t prevEwma = st.ewmaEpochNanos.load(std::memory_order_relaxed);
    st.ewmaEpochNanos.store(
        prevEwma == 0 ? durNanos : prevEwma + (durNanos - prevEwma) / 8,
        std::memory_order_relaxed);
    const int64_t prevMin = st.minEpochNanos.load(std::memory_order_relaxed);
    const int64_t epochsSoFar = st.epochs.load(std::memory_order_relaxed);
    if (epochsSoFar == 0 || durNanos < prevMin)
      st.minEpochNanos.store(durNanos, std::memory_order_relaxed);
    if (durNanos > st.maxEpochNanos.load(std::memory_order_relaxed))
      st.maxEpochNanos.store(durNanos, std::memory_order_relaxed);
    bump(st.sumEpochNanos, durNanos);
    const std::vector<int64_t>& bounds = obs::epochNanosBounds();
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), durNanos) -
        bounds.begin());
    bump(st.epochNanosCounts[bucket], 1);
    bump(st.machineCycles, local.machineCycles);
    bump(st.configCycles, local.configCycles);
    bump(st.firedTransitions, local.firedTransitions);
    bump(st.eventsDelivered, local.eventsDelivered);
    bump(st.eventsDropped, local.drops);
    bump(st.stealChunks, local.stealChunks);
    if (local.queueDepthHwm > st.queueDepthHwm.load(std::memory_order_relaxed))
      st.queueDepthHwm.store(local.queueDepthHwm, std::memory_order_relaxed);
    bump(st.instancesStepped, local.instancesStepped);
    bump(st.portWrites, local.portWrites);
    bump(st.epochs, 1);
    local.ring->push(obs::FlightKind::kEpochEnd, epoch, durNanos,
                     local.machineCycles, local.instancesStepped,
                     local.eventsDelivered);
  }
}

void Fleet::workerLoop(size_t worker) {
  if (config_.pinWorkers) pinCurrentThreadToCpu(static_cast<int>(worker));
  uint64_t seen = 0;
  for (;;) {
    int cycles = 0;
    int64_t epoch = 0;
    {
      std::unique_lock<std::mutex> lk(pool_->mu);
      pool_->start.wait(lk, [&] { return pool_->stop || pool_->generation != seen; });
      if (pool_->stop) return;
      seen = pool_->generation;
      cycles = pool_->cyclesThisEpoch;
      epoch = pool_->epochThisGeneration;
    }
    runWorkerEpoch(worker, cycles, epoch);
    {
      std::lock_guard<std::mutex> lk(pool_->mu);
      if (--pool_->running == 0) pool_->done.notify_all();
    }
  }
}

void Fleet::step(int cycles) {
  PSCP_ASSERT(cycles > 0);
  if (shardsDirty_) rebuildShards();
  for (auto& shard : shards_) shard->cursor.store(0, std::memory_order_relaxed);
  const int64_t epoch = epochs_.load(std::memory_order_relaxed) + 1;
  // Epoch-0 checkpoint: the post-setup state (after spawn/port/condition/
  // timer/warm-up ops, before any epoch) anchors replay verification.
  if (journal_ != nullptr && epoch == 1) takeCheckpoint(0);
  epochs_.store(epoch, std::memory_order_relaxed);
  if (pool_ == nullptr) {
    runWorkerEpoch(0, cycles, epoch);
  } else {
    std::unique_lock<std::mutex> lk(pool_->mu);
    pool_->cyclesThisEpoch = cycles;
    pool_->epochThisGeneration = epoch;
    pool_->running = workerCount_;
    ++pool_->generation;
    pool_->start.notify_all();
    pool_->done.wait(lk, [&] { return pool_->running == 0; });
  }
  if (journal_ != nullptr) journalEpoch(epoch, cycles);
}

// ---------------------------------------------------------- record/replay

// Post-barrier capture: each instance's `drained` scratch still holds
// exactly the events its machine consumed this epoch (it is cleared at the
// *start* of the next epoch), and the barrier happens-before this control
// thread read. Logging delivery instead of injection is what makes the
// journal deterministic — whether a racing producer's event landed in this
// epoch or the next was decided by the drain, and the journal records the
// outcome. Span ids are assigned here in instance-ascending, queue order,
// the same order a replay re-injects, so they are stable across runs.
void Fleet::journalEpoch(int64_t epoch, int cycles) {
  for (const auto& inst : instances_) {
    if (inst == nullptr) continue;
    for (const int event : inst->drained)
      journal_->recordInject(static_cast<int64_t>(inst->id), event, epoch);
  }
  journal_->recordStep(epoch, cycles);
  if (epoch % journal_->config().checkpointInterval == 0) takeCheckpoint(epoch);
}

void Fleet::takeCheckpoint(int64_t epoch) {
  journal_->beginCheckpoint(epoch);
  for (const auto& inst : instances_)
    if (inst != nullptr)
      journal_->addCheckpointInstance(static_cast<int64_t>(inst->id),
                                      inst->machine.crBits());
  journal_->endCheckpoint();
}

bool Fleet::writeJournal(const std::string& path, bool binary,
                         std::string* error) const {
  if (journal_ == nullptr) {
    if (error != nullptr) *error = "fleet journal is not armed";
    return false;
  }
  return journal_->writeFile(path, binary, error);
}

void Fleet::setInputPort(InstanceId id, const std::string& portName,
                         uint32_t value) {
  Instance& inst = liveInstance(id);
  setInputPort(id, inst.machine.portId(portName), value);
}

void Fleet::setInputPort(InstanceId id, int portAddress, uint32_t value) {
  Instance& inst = liveInstance(id);
  inst.machine.setInputPort(portAddress, value);
  if (journal_ != nullptr)
    journal_->recordSetPort(static_cast<int64_t>(id), portAddress, value);
}

void Fleet::setCondition(InstanceId id, const std::string& conditionName,
                         bool value) {
  Instance& inst = liveInstance(id);
  inst.machine.setCondition(conditionName, value);
  // The write went straight into the CR; any packed SoA row for this lane
  // is now stale, so force a shard rebuild before the next epoch.
  shardsDirty_ = true;
  if (journal_ != nullptr)
    journal_->recordSetCondition(static_cast<int64_t>(id),
                                 image_->layout().conditionBit(conditionName),
                                 value);
}

void Fleet::addTimer(InstanceId id, const std::string& eventName,
                     int64_t period) {
  Instance& inst = liveInstance(id);
  inst.machine.addTimer(eventName, period);
  if (journal_ != nullptr)
    journal_->recordAddTimer(static_cast<int64_t>(id),
                             image_->layout().eventBit(eventName), period);
}

void Fleet::warmCycle(InstanceId id, const std::vector<int>& eventBits) {
  Instance& inst = liveInstance(id);
  inst.machine.configurationCycleIds(eventBits, &inst.stats);
  if (config_.capturePortWrites) {
    const std::vector<machine::PortWrite>& writes = inst.machine.portWrites();
    inst.portLog.insert(inst.portLog.end(), writes.begin(), writes.end());
  }
  inst.machine.clearPortWrites();
  shardsDirty_ = true;  // the cycle rewrote the CR; see setCondition()
  if (journal_ != nullptr)
    journal_->recordWarmCycle(static_cast<int64_t>(id), eventBits);
}

// ------------------------------------------------------------- inspection

machine::PscpMachine& Fleet::machine(InstanceId id) { return liveInstance(id).machine; }

const machine::PscpMachine& Fleet::machine(InstanceId id) const {
  return liveInstance(id).machine;
}

InstanceSnapshot Fleet::snapshot(InstanceId id) const {
  const Instance& inst = liveInstance(id);
  InstanceSnapshot s;
  s.id = inst.id;
  s.machineCycles = inst.machineCycles;
  s.configCycles = inst.configCycles;
  s.quiescentCycles = inst.quiescentCycles;
  s.firedTransitions = inst.firedTransitions;
  s.busStallCycles = inst.busStallCycles;
  s.eventsDelivered = inst.eventsDelivered;
  s.eventsDropped = inst.dropped.load(std::memory_order_relaxed);
  s.activeStates = inst.machine.activeNames();
  return s;
}

const std::vector<machine::PortWrite>& Fleet::portWrites(InstanceId id) const {
  return liveInstance(id).portLog;
}

void Fleet::clearPortWrites(InstanceId id) { liveInstance(id).portLog.clear(); }

obs::MetricsRegistry Fleet::mergedMetrics() const {
  obs::MetricsRegistry merged;
  for (const obs::MetricsRegistry& reg : workerMetrics_) merged.mergeFrom(reg);
  // Producer-side drop counts live on the instances (they are bumped by
  // inject() callers, not workers); fold the live ones in here. Retired
  // instances take their drop counts with them.
  int64_t dropped = 0;
  for (const auto& inst : instances_)
    if (inst != nullptr) dropped += inst->dropped.load(std::memory_order_relaxed);
  merged.counter("fleet.events_dropped") += dropped;
  // Tier residency: per-instance routine-run split plus the image-wide
  // compile cache (shared across every instance over the chart).
  int64_t nativeRuns = 0;
  int64_t interpRuns = 0;
  for (const auto& inst : instances_) {
    if (inst == nullptr) continue;
    nativeRuns += inst->machine.jitNativeRuns();
    interpRuns += inst->machine.jitInterpRuns();
  }
  merged.counter("fleet.jit_native_routines") += nativeRuns;
  merged.counter("fleet.jit_interp_routines") += interpRuns;
  const tep::jit::TierResidency tier = image_->tierCache().residency();
  merged.counter("fleet.jit_compiled_routines") += tier.nativeRoutines;
  merged.counter("fleet.jit_rejected_routines") += tier.rejectedRoutines;
  merged.counter("fleet.jit_compile_micros") += tier.compileMicros;
  // The telemetry plane publishes its lock-free snapshot through the same
  // registry surface (epoch-latency histogram, queue high-water, ...).
  if (flight_ != nullptr) obs::healthToMetrics(healthSnapshot(), &merged);
  return merged;
}

tep::jit::TierResidency Fleet::tierResidency() const {
  return image_->tierCache().residency();
}

// -------------------------------------------------------------- telemetry

obs::FleetHealth Fleet::healthSnapshot() const {
  obs::FleetHealth h;
  h.telemetryEnabled = flight_ != nullptr;
  h.capturedAtNanos = obs::nowMonotonicNanos();
  h.epochs = epochs_.load(std::memory_order_relaxed);
  h.liveInstances =
      static_cast<int64_t>(liveCount_.load(std::memory_order_relaxed));
  h.workerThreads = static_cast<int>(workerCount_);
  if (!h.telemetryEnabled) return h;
  h.shards.resize(workerCount_);
  for (size_t w = 0; w < workerCount_; ++w) {
    const ShardTelemetry& st = shardTelemetry_[w];
    obs::ShardHealth& s = h.shards[w];
    const auto get = [](const std::atomic<int64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    s.shard = static_cast<int>(w);
    s.epochs = get(st.epochs);
    s.lastEpochNanos = get(st.lastEpochNanos);
    s.ewmaEpochNanos = get(st.ewmaEpochNanos);
    s.minEpochNanos = get(st.minEpochNanos);
    s.maxEpochNanos = get(st.maxEpochNanos);
    s.sumEpochNanos = get(st.sumEpochNanos);
    const int64_t start = get(st.epochStartNanos);
    s.inFlightNanos = start > 0 ? h.capturedAtNanos - start : 0;
    s.machineCycles = get(st.machineCycles);
    s.configCycles = get(st.configCycles);
    s.firedTransitions = get(st.firedTransitions);
    s.eventsDelivered = get(st.eventsDelivered);
    s.eventsDropped = get(st.eventsDropped);
    s.stealChunks = get(st.stealChunks);
    s.queueDepthHwm = get(st.queueDepthHwm);
    s.instancesStepped = get(st.instancesStepped);
    s.portWrites = get(st.portWrites);
    s.epochNanosCounts.resize(obs::kEpochNanosBucketCount);
    for (size_t b = 0; b < obs::kEpochNanosBucketCount; ++b)
      s.epochNanosCounts[b] = get(st.epochNanosCounts[b]);
  }
  return h;
}

bool Fleet::writeFlightDump(const std::string& path, std::string* error) const {
  if (flight_ == nullptr) {
    if (error != nullptr) *error = "fleet telemetry is not armed";
    return false;
  }
  return flight_->writeFile(path, error);
}

}  // namespace pscp::fleet
