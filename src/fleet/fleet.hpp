// Sharded multi-instance fleet engine (scaling the PSCP model out).
//
// One PscpMachine simulates one chip. A reactive-systems deployment —
// the paper's target domain — runs *populations* of them: every elevator
// bank, every SMD placement head, every protocol endpoint is its own
// statechart instance over the same compiled chart. The Fleet owns N
// independent PscpMachine instances spawned from one shared ChartImage
// (compile once, instantiate thousands) and steps them in batches across
// a fixed-size worker-thread pool.
//
// Execution model
//   - step(cycles) is one *epoch*: every live instance advances exactly
//     `cycles` configuration cycles, then a barrier completes the epoch.
//   - Instances are statically sharded across workers in contiguous
//     blocks (by spawn order): a shard's members are neighbours in its
//     SoA arena, so one worker streams one contiguous arena instead of
//     interleaving with every other shard's cachelines. Within an epoch
//     each worker drains its own shard in fixed-size chunks claimed
//     through an atomic cursor, then steals remaining chunks from other
//     shards — an oversized shard (instances with heavier charts, or a
//     retire-skewed distribution) is finished by whoever has idle cycles,
//     so the barrier waits for the slowest chunk, not the slowest shard.
//   - SoA batching (FleetConfig::soaBatching, default on): at epoch
//     start each shard's CRs are packed into a cacheline-aligned
//     structure-of-arrays arena (fleet/arena.hpp) and the batched SLA
//     (sla/batch.hpp) decodes 2–4 instances per vector op. Lanes that
//     select nothing — the dominant case for reactive populations, which
//     are mostly quiescent between stimuli — complete their cycle through
//     PscpMachine::applyQuiescentCycle without touching the scalar
//     machinery; lanes with events, timers, observers or a non-empty
//     selection fall back to the scalar step and are re-packed before
//     their next batched decode. Both paths are bit-identical.
//   - Event injection goes through a per-instance bounded SPSC queue.
//     Producers never take a lock and never touch the stepping hot loop;
//     the worker drains the queue at the first cycle of the instance's
//     next epoch. Injections that happen-before step() are therefore
//     delivered at that epoch's first cycle, in injection order.
//
// Determinism: an instance's trajectory is a function of its event
// script alone. Machines share only the immutable ChartImage, every
// mutable byte is instance-private, and each instance is stepped by
// exactly one worker per epoch (chunk ownership via the cursor), so
// per-instance port-write logs are bit-identical at any worker count.
// The fleet test suite asserts this at 1, 2 and 8 workers.
//
// Thread contract: Fleet's control surface (spawn/retire/step/snapshot/
// mergedMetrics/machine) is single-threaded — call it from one thread,
// between epochs. inject()/injectByName() are safe from any thread at any
// time (one producer per instance at a time), and the telemetry surface —
// healthSnapshot(), flightRecorder() snapshots, writeFlightDump() — is
// safe from any thread at any time, including mid-epoch: it reads only
// atomics and the flight rings' seqlocked slots.
//
// Telemetry plane (FleetConfig::telemetry): when armed, every worker keeps
// a flight-recorder ring (recent epoch/instance/steal/port activity, see
// obs/flight.hpp) and a cacheline-private block of health atomics (epoch
// latency EWMA/min/max/histogram, queue high-water, drop and steal
// counters, see obs/health.hpp) updated at epoch boundaries. When
// disarmed (the default), the hot loop does zero telemetry work beyond
// one predictable null check per instance step — no virtual calls, no
// clock reads, no atomic traffic — which the counting-operator-new test
// and the telemetry_overhead bench both enforce.
//
// Record/replay journal (FleetConfig::journal): when armed, every
// control-plane op and every delivered event is appended to a
// pscp-journal-v1 log with periodic CR-digest checkpoints, from which
// obs/journal/replay.hpp re-executes the run bit-identically at any
// worker count or stepping mode. See obs/journal/journal.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/spsc.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/journal/journal.hpp"
#include "obs/metrics.hpp"
#include "pscp/machine.hpp"

namespace pscp::fleet {

/// Monotonic instance handle: ids are never reused, so a stale handle
/// fails loudly instead of aliasing a newer instance.
using InstanceId = uint64_t;

struct FleetConfig {
  /// Worker threads stepping the fleet. 1 = run inline on the calling
  /// thread (no threads are spawned at all).
  int workerThreads = 1;
  /// Per-instance event-queue capacity (rounded up to a power of two).
  size_t eventQueueCapacity = 256;
  /// Instances per work-stealing chunk. Smaller = finer load balance,
  /// larger = less cursor traffic. Multiples of 8 keep chunk boundaries on
  /// SoA-arena cacheline boundaries (8 lanes × 8 B), so two workers never
  /// share a line across a steal boundary.
  size_t stealChunk = 8;
  /// Structure-of-arrays batched stepping (the default): each shard packs
  /// its instances' CRs into a contiguous lane arena and the vector-
  /// dispatched SLA (sla::BatchedSla, level from support/simd) decodes a
  /// whole lane block per pass; lanes that select nothing take the
  /// quiescent fast path without ever entering the scalar machine step.
  /// Bit-identical to the scalar path by contract — the fleet test suite
  /// diffs the two — so switching this off is purely a perf experiment
  /// (bench/fleet_throughput --no-soa sweeps both).
  bool soaBatching = true;
  /// Lanes per batched decode group, 1..64; 0 = auto (64: one selection
  /// bitmask per group, amortizing the term loop over the whole chunk).
  /// Only meaningful with soaBatching; bench --batch-width sweeps it.
  int batchWidth = 0;
  /// Pin pool worker w to logical CPU w (Linux; best-effort). Stops the
  /// scheduler migrating workers mid-epoch, which on multi-socket or
  /// many-core hosts costs both cache warmth and the scaling curve.
  /// Ignored when workerThreads == 1 (the caller owns that thread).
  bool pinWorkers = false;
  /// Keep per-instance port-write logs across epochs (drained from the
  /// machine each epoch; read/clear via portWrites()/clearPortWrites()).
  /// Off by default: a throughput fleet discards writes each epoch so
  /// steady-state memory stays flat.
  bool capturePortWrites = false;

  /// Native-tier mode applied to every instance (default: the process-wide
  /// PSCP_JIT setting). Serial-equivalent configuration cycles then run
  /// compiled TEP routines — bit-identical to the interpreter by contract
  /// (tests/tep_jit_test.cpp diffs the two across worker counts and
  /// batching modes), so this is purely a perf knob.
  tep::jit::JitMode jitMode = tep::jit::jitModeFromEnv();
  /// Routine executions before jitMode == kAuto promotes a routine.
  int64_t jitThreshold = tep::jit::kDefaultJitThreshold;

  /// Arm the telemetry plane: per-shard flight-recorder rings plus live
  /// health counters (see header comment). Off by default — a disarmed
  /// fleet pays one predictable branch per instance step and nothing else.
  bool telemetry = false;
  /// Flight-ring capacity per shard (records; rounded up to a power of
  /// two). 1024 records ≈ the last few dozen epochs of a busy shard.
  size_t flightRecordsPerShard = 1024;

  /// Arm the record/replay journal (obs/journal): every control-plane op
  /// (spawn/retire/port/condition/timer/warm cycle), every *delivered*
  /// external event with its arrival epoch, every step, and periodic
  /// CR-word digest checkpoints are appended to an in-memory journal,
  /// written out with writeJournal(). Off by default — a disarmed fleet
  /// records nothing and the stepping hot loop is untouched either way:
  /// capture reads the per-instance drained scratch on the control thread
  /// after the epoch barrier. Armed appends stay allocation-free within
  /// the journalConfig reserves (the counting-new test holds it to zero).
  bool journal = false;
  obs::journal::JournalConfig journalConfig;

  /// Fault injection for telemetry tests and demos: the worker owning
  /// shard `debugStallShard` sleeps `debugStallMicros` at the start of
  /// every epoch, which the stall/skew detector must surface. Ignored
  /// unless telemetry is armed. Not for production use.
  int debugStallShard = -1;
  int64_t debugStallMicros = 0;
};

/// Point-in-time per-instance accounting (valid between epochs).
struct InstanceSnapshot {
  InstanceId id = 0;
  int64_t machineCycles = 0;      ///< reference-clock cycles simulated
  int64_t configCycles = 0;       ///< configuration cycles run
  int64_t quiescentCycles = 0;    ///< of which the SLA selected nothing
  int64_t firedTransitions = 0;
  int64_t busStallCycles = 0;
  int64_t eventsDelivered = 0;    ///< injections drained into the machine
  int64_t eventsDropped = 0;      ///< injections rejected on a full queue
  std::vector<std::string> activeStates;  ///< current configuration
};

class Fleet {
 public:
  using ChartImagePtr = std::shared_ptr<const machine::ChartImage>;

  explicit Fleet(ChartImagePtr image, FleetConfig config = {});
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // ------------------------------------------------------------ lifecycle
  /// Create one instance over the shared image; returns its permanent id.
  InstanceId spawn();
  std::vector<InstanceId> spawnMany(size_t count);
  /// Destroy an instance (frees its machine; the id is never reused).
  void retire(InstanceId id);
  [[nodiscard]] bool isLive(InstanceId id) const;
  [[nodiscard]] size_t liveCount() const {
    return liveCount_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------------ injection
  /// CR event bit for a declared event name (same interning as the
  /// machine); resolve once, inject by bit from the hot producer path.
  [[nodiscard]] int eventId(const std::string& eventName) const;
  /// Enqueue an external event for `id`'s next epoch. Lock-free; safe
  /// from any thread (one producer per instance at a time). Returns false
  /// — and counts a drop — if the instance's queue is full or the id is
  /// retired.
  bool inject(InstanceId id, int eventBit);
  bool injectByName(InstanceId id, const std::string& eventName);

  // ------------------------------------------------------------- stepping
  /// Advance every live instance by `cycles` configuration cycles.
  void step(int cycles = 1);
  [[nodiscard]] int64_t epochs() const {
    return epochs_.load(std::memory_order_relaxed);
  }

  // ----------------------------------------------------------- inspection
  /// Direct access to an instance's machine (between epochs only). For
  /// *mutation*, prefer the journaled wrappers below: writes made here are
  /// not recorded, and CR writes (setCondition and the like) can leave a
  /// stale SoA arena row behind the batched decode's back.
  [[nodiscard]] machine::PscpMachine& machine(InstanceId id);
  [[nodiscard]] const machine::PscpMachine& machine(InstanceId id) const;
  [[nodiscard]] InstanceSnapshot snapshot(InstanceId id) const;

  /// Per-instance port-write log accumulated across epochs (requires
  /// FleetConfig::capturePortWrites).
  [[nodiscard]] const std::vector<machine::PortWrite>& portWrites(InstanceId id) const;
  void clearPortWrites(InstanceId id);

  /// Fold the per-worker metric registries into one report: counters
  /// fleet.config_cycles, fleet.machine_cycles, fleet.quiescent_cycles,
  /// fleet.fired_transitions, fleet.bus_stall_cycles,
  /// fleet.events_delivered, fleet.steal_chunks, fleet.epoch_tasks, plus
  /// the fleet.instance_cycles_per_epoch histogram.
  [[nodiscard]] obs::MetricsRegistry mergedMetrics() const;

  /// Native-tier residency of the shared chart image (routine counts,
  /// compile time, per-tier run totals). Reads only atomics in the
  /// per-image TierCache, so — unlike mergedMetrics() — it is safe to
  /// call from a display thread while workers are stepping.
  [[nodiscard]] tep::jit::TierResidency tierResidency() const;

  // ------------------------------------------------------------ telemetry
  /// The flight recorder, or nullptr when telemetry is disarmed. Ring
  /// snapshots are safe from any thread at any time.
  [[nodiscard]] const obs::FlightRecorder* flightRecorder() const {
    return flight_.get();
  }
  /// Lock-free point-in-time health snapshot: safe from any thread at any
  /// time, including while an epoch is running (that is the point — it is
  /// how a dashboard sees a stalled epoch *while* it stalls). With
  /// telemetry disarmed only the fleet-level fields are populated.
  [[nodiscard]] obs::FleetHealth healthSnapshot() const;
  /// Dump the flight recorder to `path` as pscp-flight-v1 JSON. Safe from
  /// any thread; false when telemetry is disarmed or on I/O failure.
  bool writeFlightDump(const std::string& path, std::string* error = nullptr) const;

  // --------------------------------------------------------- record/replay
  /// The armed journal, or nullptr (FleetConfig::journal). Unlike the
  /// telemetry surface this is control-thread-only, between epochs.
  [[nodiscard]] const obs::journal::Journal* journal() const {
    return journal_.get();
  }
  /// Dump the journal as pscp-journal-v1 (JSON, or the compact binary
  /// framing). False when the journal is disarmed or on I/O failure.
  bool writeJournal(const std::string& path, bool binary = false,
                    std::string* error = nullptr) const;

  /// Journaled machine-control surface: same effect as the corresponding
  /// PscpMachine calls through machine(id), but logged so a replay
  /// reproduces them, and SoA-safe (they mark the shard arenas stale, so
  /// batched decode never reads a CR row mutated behind its back).
  /// Replayable runs must route all pre-/inter-epoch machine mutation
  /// through these — direct machine() writes are invisible to the journal.
  void setInputPort(InstanceId id, const std::string& portName, uint32_t value);
  void setInputPort(InstanceId id, int portAddress, uint32_t value);
  void setCondition(InstanceId id, const std::string& conditionName, bool value);
  void addTimer(InstanceId id, const std::string& eventName, int64_t period);
  /// Run one configuration cycle directly on `id`'s machine, outside the
  /// epoch loop, with the given interned events — the warm-up path. Port
  /// writes from the cycle follow the fleet's epoch semantics: appended to
  /// the portWrites(id) log when capturePortWrites is set, dropped
  /// otherwise.
  void warmCycle(InstanceId id, const std::vector<int>& eventBits);

  [[nodiscard]] const ChartImagePtr& image() const { return image_; }
  [[nodiscard]] const FleetConfig& config() const { return config_; }

 private:
  struct Instance;
  struct Shard;
  struct WorkerLocal;      // per-epoch accumulator, flushed to a registry
  struct WorkerMetricRefs; // cached registry pointers (no lookups per epoch)
  struct ShardTelemetry;   // cacheline-private health atomics per worker

  Instance& liveInstance(InstanceId id);
  [[nodiscard]] const Instance& liveInstance(InstanceId id) const;
  void rebuildShards();
  void runWorkerEpoch(size_t worker, int cycles, int64_t epoch);
  void stepInstance(Instance& inst, int cycles, WorkerLocal& local);
  /// SoA fast path: step one claimed chunk of a shard cycle-major, vector
  /// decode per lane group, scalar fallback for non-quiescent lanes.
  void stepChunkBatched(Shard& shard, size_t begin, size_t end, int cycles,
                        WorkerLocal& local);
  /// Per-lane epoch bookkeeping shared by both stepping paths (counter
  /// fold, telemetry records, port-write capture).
  void finishInstanceEpoch(Instance& inst, int cycles, int64_t epochMachineCycles,
                           int64_t epochFired, int64_t drainedCount,
                           WorkerLocal& local);
  void workerLoop(size_t worker);

  ChartImagePtr image_;
  FleetConfig config_;
  size_t workerCount_ = 1;

  std::vector<std::unique_ptr<Instance>> instances_;  // index == InstanceId
  std::atomic<size_t> liveCount_{0};  // written by control thread only
  std::vector<std::unique_ptr<Shard>> shards_;
  bool shardsDirty_ = true;
  std::atomic<int64_t> epochs_{0};  // written by control thread only

  std::vector<obs::MetricsRegistry> workerMetrics_;  // one per worker
  std::vector<WorkerMetricRefs> workerMetricRefs_;   // parallel to the above

  // Telemetry plane (null / empty when config_.telemetry is false).
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<ShardTelemetry[]> shardTelemetry_;

  // Record/replay journal (null when config_.journal is false). Appended
  // on the control thread only; see journalEpoch()/takeCheckpoint().
  std::unique_ptr<obs::journal::Journal> journal_;
  void journalEpoch(int64_t epoch, int cycles);
  void takeCheckpoint(int64_t epoch);

  // Epoch barrier (only used when workerCount_ > 1).
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace pscp::fleet
