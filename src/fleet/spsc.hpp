// Bounded single-producer / single-consumer ring queue.
//
// The fleet gives every instance one of these for event injection: the
// producer side is whatever thread calls Fleet::inject (one logical
// producer per instance — callers serialize per instance, not globally),
// the consumer side is the worker that steps the instance. Neither side
// ever takes a lock or allocates: push/pop are one load-acquire, one
// store-release and an array write each, so producers can feed thousands
// of instances without perturbing the stepping hot loop.
//
// Capacity is rounded up to a power of two so the head/tail indices wrap
// with a mask instead of a modulo. Indices are monotonically increasing
// uint64s (they never wrap in practice: 2^64 events is centuries), which
// keeps the full/empty distinction trivial: size == head - tail.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pscp::fleet {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] size_t capacity() const { return slots_.size(); }

  /// Producer side. False = queue full (caller decides: retry or drop).
  bool tryPush(const T& value) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) return false;
    slots_[static_cast<size_t>(head) & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False = queue empty.
  bool tryPop(T* out) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    *out = slots_[static_cast<size_t>(tail) & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot size (exact from either end's own thread, approximate from
  /// anywhere else).
  [[nodiscard]] size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(head - tail);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Head and tail on separate cache lines so the producer's stores never
  // false-share with the consumer's.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace pscp::fleet
