// Per-shard structure-of-arrays arena for instance CR snapshots.
//
// The fleet's batched stepping path (fleet.cpp) packs every same-shard
// instance's Configuration Register into this arena at epoch start: CR
// word w of lane l lives at words()[w * laneStride() + l], so one CR word
// across consecutive instances is contiguous — the layout sla::BatchedSla
// vector kernels require. The lane stride rounds up to 8 lanes (8 × 8 B =
// one cacheline) and the buffer is cacheline-aligned, so a word row never
// straddles into another row's cacheline and vector loads stay in-bounds
// for any full lane block; padding lanes are zero and never inspected.
//
// Allocation happens only in resize() (shard rebuild — a control-path
// operation); pack/unpack are plain word copies, keeping the epoch loop
// inside the fleet's allocation-free steady-state contract.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

#include "sla/batch.hpp"
#include "support/bits.hpp"
#include "support/diag.hpp"

namespace pscp::fleet {

class ShardArena {
 public:
  /// Size for `lanes` instances of `crWords`-word CRs. Reallocates only
  /// when the padded geometry grows; contents are zeroed either way.
  void resize(size_t lanes, size_t crWords) {
    const size_t stride = (lanes + kLaneRound - 1) & ~(kLaneRound - 1);
    const size_t needed = stride * crWords;
    if (needed > capacity_) {
      words_.reset(static_cast<uint64_t*>(
          ::operator new[](needed * sizeof(uint64_t), std::align_val_t{64})));
      capacity_ = needed;
    }
    lanes_ = lanes;
    crWords_ = crWords;
    laneStride_ = stride;
    if (needed != 0) std::memset(words_.get(), 0, needed * sizeof(uint64_t));
  }

  [[nodiscard]] size_t lanes() const { return lanes_; }
  [[nodiscard]] size_t crWords() const { return crWords_; }
  [[nodiscard]] size_t laneStride() const { return laneStride_; }
  [[nodiscard]] const uint64_t* words() const { return words_.get(); }

  /// Copy a CR into lane `lane` (word-strided scatter).
  void pack(size_t lane, const BitVec& cr) {
    PSCP_ASSERT(lane < lanes_ && cr.wordCount() == crWords_);
    uint64_t* base = words_.get() + lane;
    for (size_t w = 0; w < crWords_; ++w) base[w * laneStride_] = cr.word(w);
  }

  /// Copy lane `lane` back out into a CR sized for this arena's words.
  void unpack(size_t lane, BitVec* cr) const {
    PSCP_ASSERT(lane < lanes_ && cr->wordCount() == crWords_);
    const uint64_t* base = words_.get() + lane;
    for (size_t w = 0; w < crWords_; ++w) cr->setWord(w, base[w * laneStride_]);
  }

  /// Borrowed view for sla::BatchedSla evaluation.
  [[nodiscard]] sla::CrSoa view() const {
    return sla::CrSoa{words_.get(), laneStride_, crWords_};
  }

 private:
  static constexpr size_t kLaneRound = 8;  ///< 8 × 8 B lanes = one cacheline

  struct AlignedDelete {
    void operator()(uint64_t* p) const noexcept {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  std::unique_ptr<uint64_t[], AlignedDelete> words_;
  size_t capacity_ = 0;
  size_t lanes_ = 0;
  size_t crWords_ = 0;
  size_t laneStride_ = 0;
};

}  // namespace pscp::fleet
