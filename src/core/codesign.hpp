// The top-level codesign flow (paper Sec. 2-5, end to end):
//
//   textual statechart + C action routines
//     -> parse / check (Statechart Structural Analyzer front end)
//     -> CR layout + SLA synthesis (BLIF and VHDL)
//     -> iterative architecture & instruction selection against the
//        timing constraints (Sec. 4)
//     -> compiled TEP program, microcode decoder, area account,
//        floorplan on the chosen FPGA.
//
// This is the API a downstream user drives; the examples and benches are
// thin wrappers around it.
#pragma once

#include <memory>
#include <string>

#include "actionlang/ast.hpp"
#include "explore/explorer.hpp"
#include "fpga/device.hpp"
#include "pscp/machine.hpp"
#include "statechart/chart.hpp"
#include "timing/event_cycles.hpp"

namespace pscp::core {

struct CodesignResult {
  statechart::Chart chart;
  actionlang::Program actions;  ///< with the explorer's storage classes
  explore::ExplorationResult exploration;

  // Generated artifacts.
  std::string slaBlif;
  std::string slaVhdl;
  std::string crDescription;
  std::string programListing;
  std::string timingTable;     ///< Table-3-style event-cycle report
  std::string floorplanAscii;  ///< Fig.-8-style placement
  fpga::Device device;

  /// Instantiate the cycle-accurate machine for the selected architecture.
  [[nodiscard]] std::unique_ptr<machine::PscpMachine> buildMachine() const;

  /// One-page summary (architecture, area, timing verdict).
  [[nodiscard]] std::string summary() const;
};

class Codesign {
 public:
  /// Run the full flow. `deviceName` picks the FPGA (default: the paper's
  /// XC4025). Throws pscp::Error on malformed inputs.
  [[nodiscard]] static CodesignResult run(const std::string& chartText,
                                          const std::string& actionText,
                                          const std::string& deviceName = "XC4025");
};

/// Floorplan block list for an architecture (shared blocks + per-TEP).
[[nodiscard]] std::vector<fpga::Block> floorplanBlocks(
    const hwlib::ArchConfig& arch, const hwlib::ChartHardwareStats& stats,
    int microWords);

}  // namespace pscp::core
