#include "core/codesign.hpp"

#include "actionlang/parser.hpp"
#include "sla/sla.hpp"
#include "statechart/parser.hpp"
#include "tep/microcode.hpp"

namespace pscp::core {

std::vector<fpga::Block> floorplanBlocks(const hwlib::ArchConfig& arch,
                                         const hwlib::ChartHardwareStats& stats,
                                         int microWords) {
  std::vector<fpga::Block> blocks;
  blocks.push_back({"SLA", stats.productTerms / 2.0});
  blocks.push_back({"Configuration Register", stats.crBits / 2.0});
  blocks.push_back({"Transition Address Table", stats.transitions / 2.0});
  blocks.push_back(
      {"Port architecture",
       hwlib::componentArea(hwlib::ComponentId::PortInterface, arch.dataWidth) *
           stats.ports});
  blocks.push_back({"Scheduler", 10.0 + 4.0 * arch.numTeps});
  for (int i = 0; i < arch.numTeps; ++i) {
    const std::string prefix = strfmt("TEP%d ", i);
    for (const hwlib::SelectedComponent& part : hwlib::tepComponents(arch, microWords)) {
      const double area = hwlib::componentArea(part.id, part.width) * part.count;
      if (area < 0.5) continue;
      blocks.push_back({prefix + hwlib::componentName(part.id), area});
    }
  }
  return blocks;
}

std::unique_ptr<machine::PscpMachine> CodesignResult::buildMachine() const {
  return std::make_unique<machine::PscpMachine>(chart, actions, exploration.arch,
                                                exploration.options);
}

std::string CodesignResult::summary() const {
  std::string out;
  out += "=== PSCP codesign summary ===\n";
  out += "architecture : " + exploration.arch.describe() + "\n";
  out += strfmt("area         : %.0f CLBs on %s (%s)\n", exploration.final.areaClb,
                device.name.c_str(),
                exploration.fitsDevice ? "fits" : "DOES NOT FIT");
  out += strfmt("timing       : %s (%d violating event cycles, worst excess %lld)\n",
                exploration.timingMet ? "all constraints met" : "violations remain",
                exploration.final.violations,
                static_cast<long long>(exploration.final.worstExcess));
  out += strfmt("program      : %d words, microcode %d words\n",
                exploration.final.programWords, exploration.final.microWords);
  return out;
}

CodesignResult Codesign::run(const std::string& chartText, const std::string& actionText,
                             const std::string& deviceName) {
  statechart::Chart chart = statechart::parseChart(chartText, "<chart>");
  actionlang::Program parsed = actionlang::parseActionSource(actionText, "<actions>");
  const fpga::Device& device = fpga::deviceByName(deviceName);

  explore::Explorer explorer(chart, std::move(parsed), device);
  explore::ExplorationResult exploration = explorer.run();

  // Re-parse to obtain an owned program, then apply the explorer's storage
  // decisions (Program is move-only; the explorer owns its working copy).
  actionlang::Program finalProgram =
      actionlang::parseActionSource(actionText, "<actions>");
  for (const auto& [name, sc] : explorer.storageClasses()) {
    actionlang::GlobalVar* g = finalProgram.findGlobal(name);
    if (g != nullptr) g->storageClass = sc;
  }

  // Move the inputs into the result first so every analysis below binds to
  // the long-lived copies.
  CodesignResult result{std::move(chart), std::move(finalProgram),
                        std::move(exploration), "", "", "", "", "", "", device};

  sla::CrLayout layout(result.chart);
  sla::Sla slaModel(result.chart, layout);
  const compiler::HardwareBinding binding = sla::makeBinding(result.chart, layout);
  compiler::Compiler comp(result.actions, binding, result.exploration.arch,
                          result.exploration.options);
  const compiler::CompiledApp app = comp.compile(result.chart);

  timing::TransitionLengths lengths =
      timing::transitionLengths(result.chart, app.program, app.transitionRoutine,
                                result.exploration.arch, layout.conditionCount());
  timing::EventCycleAnalyzer analyzer(result.chart, std::move(lengths),
                                      result.exploration.arch.numTeps);

  result.slaBlif = slaModel.emitBlif(result.chart.name());
  result.slaVhdl = slaModel.emitVhdl(result.chart.name());
  result.crDescription = layout.describe(result.chart);
  result.programListing = app.program.listing();
  result.timingTable =
      timing::renderEventCycleTable(result.chart, analyzer.analyzeConstrained());

  const int microWords = tep::buildMicrocodeRom(app.program, result.exploration.arch)
                             .totalWords();
  fpga::Floorplan plan(device,
                       floorplanBlocks(result.exploration.arch,
                                       slaModel.hardwareStats(result.chart), microWords));
  result.floorplanAscii = plan.render();
  return result;
}

}  // namespace pscp::core
