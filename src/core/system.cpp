#include "core/system.hpp"

#include <algorithm>

namespace pscp::core {

using statechart::StepResult;

ReferenceSystem::ReferenceSystem(const statechart::Chart& chart,
                                 const actionlang::Program& actions)
    : chartModel_(chart), chart_(chart), actions_(actions, *this) {}

void ReferenceSystem::attachObserver(obs::ObsSink* sink) {
  sink_ = sink;
  if (sink_ == nullptr) return;
  obs::TraceMeta meta;
  meta.chartName = chartModel_.name();
  meta.tepCount = 0;  // specification level: no TEPs
  meta.stateNames.resize(chartModel_.states().size());
  for (const statechart::State& s : chartModel_.states())
    meta.stateNames[static_cast<size_t>(s.id)] = s.name;
  meta.transitionNames.resize(chartModel_.transitions().size());
  for (const statechart::Transition& t : chartModel_.transitions())
    meta.transitionNames[static_cast<size_t>(t.id)] =
        strfmt("T%d %s -> %s", t.id, chartModel_.state(t.source).name.c_str(),
               chartModel_.state(t.target).name.c_str());
  for (const auto& [name, port] : chartModel_.ports())
    meta.portNames.emplace_back(port.address, name);
  for (statechart::StateId s : chart_.active())
    meta.initialActive.push_back(static_cast<int>(s));
  meta.stateParent.resize(chartModel_.states().size(), -1);
  for (const statechart::State& s : chartModel_.states())
    meta.stateParent[static_cast<size_t>(s.id)] = static_cast<int>(s.parent);
  meta.transitionSource.resize(chartModel_.transitions().size(), -1);
  for (const statechart::Transition& t : chartModel_.transitions())
    meta.transitionSource[static_cast<size_t>(t.id)] = static_cast<int>(t.source);
  // No scheduler cost model at specification level: charges stay 0.
  sink_->onAttach(meta);
}

StepResult ReferenceSystem::step(const std::set<std::string>& externalEvents) {
  snapshot_ = chart_.active();
  const int64_t step = stepIndex_++;
  if (sink_ != nullptr) sink_->onCycleBegin(step, step);
  statechart::ActionHandler handler = [this](const statechart::ActionCall& call,
                                             statechart::StepEffects& fx) {
    effects_ = &fx;
    actions_.callFromLabel(call.function, call.args);
    effects_ = nullptr;
  };
  StepResult result = chart_.step(externalEvents, handler);
  if (sink_ != nullptr) {
    std::vector<int> fired(result.fired.begin(), result.fired.end());
    sink_->onSlaSelect(fired, fired, 0, step);
    std::vector<int> activeIds;
    for (statechart::StateId s : chart_.active())
      activeIds.push_back(static_cast<int>(s));
    sink_->onConfigUpdate(activeIds, step + 1);
    sink_->onCycleEnd(step, 1, 0, static_cast<int>(result.fired.size()),
                      result.quiescent, step + 1);
  }
  return result;
}

std::vector<StepResult> ReferenceSystem::runToQuiescence(
    const std::set<std::string>& initialEvents, int maxCycles) {
  std::vector<StepResult> out;
  out.push_back(step(initialEvents));
  while (static_cast<int>(out.size()) < maxCycles) {
    const bool pending = !out.back().raisedEvents.empty();
    if (out.back().quiescent && !pending) break;
    out.push_back(step({}));
    if (out.back().quiescent && out.back().raisedEvents.empty()) break;
  }
  return out;
}

bool ReferenceSystem::isActive(const std::string& stateName) const {
  return chart_.isActive(stateName);
}

std::vector<std::string> ReferenceSystem::activeNames() const {
  return chart_.activeNames();
}

bool ReferenceSystem::conditionValue(const std::string& name) const {
  return chart_.conditionValue(name);
}

void ReferenceSystem::forceCondition(const std::string& name, bool value) {
  chart_.setCondition(name, value);
}

int64_t ReferenceSystem::globalValue(const std::string& name) const {
  return actions_.globalValue(name);
}

void ReferenceSystem::setGlobalValue(const std::string& name, int64_t value) {
  actions_.setGlobalValue(name, value);
}

void ReferenceSystem::setInputPort(const std::string& portName, uint32_t value) {
  if (chartModel_.ports().count(portName) == 0)
    fail("no port named '%s'", portName.c_str());
  ports_[portName] = value;
}

uint32_t ReferenceSystem::outputPort(const std::string& portName) const {
  auto it = ports_.find(portName);
  return it == ports_.end() ? 0 : it->second;
}

// ----------------------------------------------------------- HardwareEnv

void ReferenceSystem::raiseEvent(const std::string& name) {
  PSCP_ASSERT(effects_ != nullptr);
  effects_->raiseEvent(name);
}

void ReferenceSystem::setCondition(const std::string& name, bool value) {
  PSCP_ASSERT(effects_ != nullptr);
  effects_->setCondition(name, value);
}

bool ReferenceSystem::testCondition(const std::string& name) {
  // A routine sees its own (and this step's) pending writes, then the CR.
  if (effects_ != nullptr) {
    auto it = effects_->conditionWrites().find(name);
    if (it != effects_->conditionWrites().end()) return it->second;
  }
  return chart_.conditionValue(name);
}

uint32_t ReferenceSystem::readPort(const std::string& name) { return ports_[name]; }

void ReferenceSystem::writePort(const std::string& name, uint32_t value) {
  ports_[name] = value;
  portWrites_.emplace_back(name, value);
  if (sink_ != nullptr) {
    const auto it = chartModel_.ports().find(name);
    const int address = it == chartModel_.ports().end() ? -1 : it->second.address;
    sink_->onPortWrite(address, value, stepIndex_ - 1, stepIndex_ - 1);
  }
}

bool ReferenceSystem::inState(const std::string& name) {
  const statechart::StateId id = chartModel_.findState(name);
  return id != statechart::kNoState && snapshot_.count(id) != 0;
}

}  // namespace pscp::core
