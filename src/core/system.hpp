// ReferenceSystem: specification-level co-simulation of a reactive
// application — the statechart Interpreter drives configurations while the
// action-language Interp executes transition routines against a
// HardwareEnv that mirrors the PSCP's CR/port architecture.
//
// This is the golden model: the cycle-accurate machine::PscpMachine must
// produce the same observable behaviour (configurations, conditions,
// events, port writes, global values) on the same event trace.
//
// Known modelling difference (both sides are documented races in the
// paper's architecture too): a routine reading a condition written by a
// *different* routine in the same configuration cycle sees the merged
// step effects here but only its own TEP cache on the PSCP; designers
// must use mutual-exclusion groups for such couplings.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "actionlang/interp.hpp"
#include "obs/sink.hpp"
#include "statechart/semantics.hpp"

namespace pscp::core {

class ReferenceSystem : public actionlang::HardwareEnv {
 public:
  ReferenceSystem(const statechart::Chart& chart, const actionlang::Program& actions);

  /// One configuration cycle.
  statechart::StepResult step(const std::set<std::string>& externalEvents);

  /// Step until quiescent (no fired transitions, no pending events).
  std::vector<statechart::StepResult> runToQuiescence(
      const std::set<std::string>& initialEvents, int maxCycles = 64);

  // ------------------------------------------------------------ observers
  [[nodiscard]] bool isActive(const std::string& stateName) const;
  [[nodiscard]] std::vector<std::string> activeNames() const;
  [[nodiscard]] bool conditionValue(const std::string& name) const;
  /// Testbench-level condition override (writes the CR directly).
  void forceCondition(const std::string& name, bool value);
  [[nodiscard]] int64_t globalValue(const std::string& name) const;
  void setGlobalValue(const std::string& name, int64_t value);
  void setInputPort(const std::string& portName, uint32_t value);
  [[nodiscard]] uint32_t outputPort(const std::string& portName) const;
  [[nodiscard]] const std::vector<std::pair<std::string, uint32_t>>& portWriteLog()
      const {
    return portWrites_;
  }

  [[nodiscard]] const statechart::Interpreter& chartInterp() const { return chart_; }
  [[nodiscard]] actionlang::Interp& actionInterp() { return actions_; }

  /// Attach a specification-level observability sink. The reference system
  /// has no machine clock: timestamps are configuration-step indices, which
  /// makes its traces directly comparable (step-for-step) with the
  /// cycle-accurate machine's cycle records.
  void attachObserver(obs::ObsSink* sink);

  // -------------------------------------------------- HardwareEnv (actions)
  void raiseEvent(const std::string& name) override;
  void setCondition(const std::string& name, bool value) override;
  bool testCondition(const std::string& name) override;
  uint32_t readPort(const std::string& name) override;
  void writePort(const std::string& name, uint32_t value) override;
  bool inState(const std::string& name) override;

 private:
  const statechart::Chart& chartModel_;
  statechart::Interpreter chart_;
  actionlang::Interp actions_;

  // Step-scoped wiring.
  statechart::StepEffects* effects_ = nullptr;
  std::set<statechart::StateId> snapshot_;

  std::map<std::string, uint32_t> ports_;
  std::vector<std::pair<std::string, uint32_t>> portWrites_;

  obs::ObsSink* sink_ = nullptr;
  int64_t stepIndex_ = 0;
};

}  // namespace pscp::core
