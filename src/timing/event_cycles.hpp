// Heuristic static timing validation for extended statecharts (Sec. 4).
//
// Full validation is reachability analysis (NP-complete even for basic
// statecharts), so the paper localizes: for each constrained event, find
// every state that consumes it, then depth-first search the transition
// graph for *event cycles* — paths between two consumptions of the event.
// The length of a cycle is the sum of its transition lengths; whenever a
// step is taken inside one component of an AND state, a recursively
// computed upper bound for the parallel siblings is added (OR-state: max
// over children; AND-state: sum over children).
//
// Transition lengths come from the compiled code's WCET plus the scheduler
// overhead (shared cost model in pscp/sched_cost.hpp); transitions with an
// explicit `bound` annotation use it instead.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hwlib/arch_config.hpp"
#include "statechart/chart.hpp"
#include "tep/isa.hpp"

namespace pscp::timing {

/// Per-transition execution lengths in reference-clock cycles.
using TransitionLengths = std::map<statechart::TransitionId, int64_t>;

/// Compute transition lengths from a compiled application: WCET of each
/// transition routine + per-transition scheduler overhead. Explicit bounds
/// on transitions override the computed value.
[[nodiscard]] TransitionLengths transitionLengths(
    const statechart::Chart& chart, const tep::AsmProgram& program,
    const std::map<int, std::string>& transitionRoutine,
    const hwlib::ArchConfig& config, int conditionCount);

/// One discovered event cycle: a path between two states that both consume
/// the analyzed event (possibly the same state — a self cycle).
struct EventCycle {
  std::string event;
  std::vector<statechart::StateId> states;       ///< visited states, in order
  std::vector<statechart::TransitionId> path;    ///< transitions taken
  int64_t length = 0;                            ///< cycles, incl. sibling bounds
  int64_t period = 0;                            ///< the event's constraint (0 = none)

  [[nodiscard]] bool violates() const { return period > 0 && length > period; }
  [[nodiscard]] std::string describe(const statechart::Chart& chart) const;
};

class EventCycleAnalyzer {
 public:
  /// `numTeps` models the parallel machine: the reaction work of parallel
  /// siblings overlaps with the explored path when several TEPs execute
  /// concurrently, so the per-step sibling burden divides by the TEP count
  /// (the paper's "last resort" lever of Sec. 4).
  EventCycleAnalyzer(const statechart::Chart& chart, TransitionLengths lengths,
                     int numTeps = 1);

  /// Upper bound (cycles) for the subtree rooted at `s`: the worst single
  /// reaction the subtree can contribute while a sibling path is explored.
  [[nodiscard]] int64_t subtreeBound(statechart::StateId s) const;

  /// Extra cost charged per exploration step from `state`: the sum of the
  /// subtree bounds of all parallel siblings along its ancestor chain.
  [[nodiscard]] int64_t parallelBurden(statechart::StateId state) const;

  /// States with an outgoing transition triggered/guarded by `event`.
  [[nodiscard]] std::vector<statechart::StateId> consumers(
      const std::string& event) const;

  /// All event cycles for `event`, up to `maxDepth` transitions each.
  [[nodiscard]] std::vector<EventCycle> analyze(const std::string& event,
                                                int maxDepth = 10) const;

  /// Analyze every event that carries a period constraint.
  [[nodiscard]] std::vector<EventCycle> analyzeConstrained(int maxDepth = 10) const;

  [[nodiscard]] const TransitionLengths& lengths() const { return lengths_; }

 private:
  [[nodiscard]] bool transitionMentions(const statechart::Transition& t,
                                        const std::string& event) const;

  const statechart::Chart& chart_;
  TransitionLengths lengths_;
  int numTeps_ = 1;
  mutable std::map<statechart::StateId, int64_t> boundCache_;
};

/// Human-readable Table-3-style report.
[[nodiscard]] std::string renderEventCycleTable(const statechart::Chart& chart,
                                                const std::vector<EventCycle>& cycles);

}  // namespace pscp::timing
