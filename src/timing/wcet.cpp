#include "timing/wcet.hpp"

#include <algorithm>
#include <functional>

#include "tep/microcode.hpp"

namespace pscp::timing {

using tep::AsmProgram;
using tep::Instr;
using tep::LoopRegion;
using tep::Opcode;

WcetAnalyzer::WcetAnalyzer(const AsmProgram& program, const hwlib::ArchConfig& config)
    : program_(program), config_(config) {}

int64_t WcetAnalyzer::instructionCost(int index) {
  PSCP_ASSERT(index >= 0 && index < static_cast<int>(program_.code.size()));
  const Instr& in = program_.code[static_cast<size_t>(index)];
  int64_t cost = tep::cyclesFor(in, config_);
  // External-RAM wait states: one extra cycle per chunk moved.
  switch (in.op) {
    case Opcode::LdaMem:
    case Opcode::LdoMem:
    case Opcode::StaMem:
      if (tep::isExternalAddress(in.operand)) cost += config_.chunksFor(in.width);
      break;
    case Opcode::LdaInd:
    case Opcode::StaInd:
      // Address unknown statically: assume external (sound upper bound).
      cost += config_.chunksFor(in.width);
      break;
    case Opcode::Call:
      cost += wcetOf(in.operand);
      break;
    default:
      break;
  }
  return cost;
}

int64_t WcetAnalyzer::wcetOf(int entry) {
  auto it = entryCache_.find(entry);
  if (it != entryCache_.end()) return it->second;
  entryCache_[entry] = 0;  // cut accidental cycles defensively
  const int64_t result = longestPath(entry, 0, static_cast<int>(program_.code.size()), 0);
  entryCache_[entry] = result;
  return result;
}

int64_t WcetAnalyzer::wcetOfRoutine(const std::string& routine) {
  return wcetOf(program_.entryOf(routine));
}

namespace {
bool isTerminator(Opcode op) { return op == Opcode::Ret || op == Opcode::Tret; }

bool isConditional(Opcode op) {
  switch (op) {
    case Opcode::Jz:
    case Opcode::Jnz:
    case Opcode::Jn:
    case Opcode::Jc:
      return true;
    default:
      return false;
  }
}
}  // namespace

/// Longest path from `entry`, confined to [regionBegin, regionEnd); paths
/// leaving the region (or hitting a back edge / terminator) end there.
int64_t WcetAnalyzer::longestPath(int entry, int regionBegin, int regionEnd, int depth) {
  if (depth > 64) fail("WCET analysis recursion too deep (unannotated loop?)");

  // Iterative worklist would be faster; routines are small, so a memoized
  // recursion over instruction indices is clear and sufficient.
  std::map<int, int64_t> memo;
  std::function<int64_t(int)> visit = [&](int i) -> int64_t {
    if (i < regionBegin || i >= regionEnd) return 0;  // left the region
    auto mit = memo.find(i);
    if (mit != memo.end()) {
      if (mit->second == -1)
        fail("WCET: unannotated cycle at instruction %d (missing loop bound?)", i);
      return mit->second;
    }
    memo[i] = -1;  // visiting marker

    // Innermost loop region starting exactly here (excluding the one we are
    // currently analyzing, identified by begin == regionBegin at this call).
    const LoopRegion* loop = nullptr;
    for (const LoopRegion& lr : program_.loops) {
      if (lr.begin != i) continue;
      if (lr.begin == regionBegin && lr.end == regionEnd) continue;  // self
      if (lr.begin < regionBegin || lr.end > regionEnd) continue;    // outside
      if (loop == nullptr || lr.end > loop->end) loop = &lr;         // outermost
    }
    if (loop != nullptr) {
      const int64_t body = longestPath(loop->begin, loop->begin, loop->end, depth + 1);
      const int64_t after = visit(loop->end);
      // bound iterations plus the final header test that exits the loop;
      // charging one extra body keeps the bound sound (and simple).
      const int64_t total = (loop->bound + 1) * body + after;
      memo[i] = total;
      return total;
    }

    const Instr& in = program_.code[static_cast<size_t>(i)];
    const int64_t cost = instructionCost(i);
    int64_t best = 0;
    if (isTerminator(in.op)) {
      best = 0;
    } else if (in.op == Opcode::Jmp) {
      // Back edges (target at or before the loop header) terminate the
      // body path; forward jumps continue.
      best = (in.operand <= i) ? 0 : visit(in.operand);
    } else if (isConditional(in.op)) {
      const int64_t taken = (in.operand <= i) ? 0 : visit(in.operand);
      const int64_t fall = visit(i + 1);
      best = std::max(taken, fall);
    } else {
      best = visit(i + 1);
    }
    const int64_t total = cost + best;
    memo[i] = total;
    return total;
  };
  return visit(entry);
}

}  // namespace pscp::timing
