// Static worst-case execution time of compiled routines (paper Sec. 4:
// "if possible, the transition lengths are derived from the assembler code
// of their associated routines, otherwise explicit timing constraints must
// be specified").
//
// Method: per-instruction costs come from the microprograms (the same
// model the simulator executes), external-memory operands add their wait
// states, CALLs add the callee's WCET (recursion is impossible by
// construction), and loops add (bound) x (longest path through the loop
// body) using the designer-asserted `bound` annotations carried in
// AsmProgram::loops. Branching joins take the longest alternative, so the
// result is a sound upper bound for the cost model.
#pragma once

#include <map>
#include <string>

#include "hwlib/arch_config.hpp"
#include "tep/isa.hpp"

namespace pscp::timing {

class WcetAnalyzer {
 public:
  WcetAnalyzer(const tep::AsmProgram& program, const hwlib::ArchConfig& config);

  /// WCET (cycles) of the code reachable from `entry` up to TRET/RET.
  [[nodiscard]] int64_t wcetOf(int entry);
  [[nodiscard]] int64_t wcetOfRoutine(const std::string& routine);

  /// Cost of a single instruction: microprogram length plus external-RAM
  /// wait states (one per chunk) for memory operands, plus callee WCET for
  /// CALL instructions.
  [[nodiscard]] int64_t instructionCost(int index);

 private:
  [[nodiscard]] int64_t longestPath(int entry, int regionBegin, int regionEnd,
                                    int depth);

  const tep::AsmProgram& program_;
  const hwlib::ArchConfig& config_;
  std::map<int, int64_t> entryCache_;
};

}  // namespace pscp::timing
