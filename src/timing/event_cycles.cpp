#include "timing/event_cycles.hpp"

#include <algorithm>
#include <set>

#include "pscp/sched_cost.hpp"
#include "support/text.hpp"
#include "timing/wcet.hpp"

namespace pscp::timing {

using statechart::Chart;
using statechart::StateId;
using statechart::StateKind;
using statechart::Transition;
using statechart::TransitionId;

TransitionLengths transitionLengths(const Chart& chart, const tep::AsmProgram& program,
                                    const std::map<int, std::string>& transitionRoutine,
                                    const hwlib::ArchConfig& config, int conditionCount) {
  WcetAnalyzer wcet(program, config);
  const int64_t overhead = machine::cycleOverhead(config, conditionCount) +
                           machine::kDispatchCyclesPerTransition;
  TransitionLengths lengths;
  for (const Transition& t : chart.transitions()) {
    if (t.explicitBound.has_value()) {
      lengths[t.id] = *t.explicitBound;
      continue;
    }
    auto it = transitionRoutine.find(t.id);
    const int64_t code = it != transitionRoutine.end()
                             ? wcet.wcetOfRoutine(it->second)
                             : 0;
    lengths[t.id] = code + overhead;
  }
  return lengths;
}

std::string EventCycle::describe(const Chart& chart) const {
  std::string out = "{";
  for (size_t i = 0; i < states.size(); ++i) {
    if (i != 0) out += ", ";
    out += chart.state(states[i]).name;
  }
  out += "}";
  return out;
}

EventCycleAnalyzer::EventCycleAnalyzer(const Chart& chart, TransitionLengths lengths,
                                       int numTeps)
    : chart_(chart), lengths_(std::move(lengths)), numTeps_(numTeps) {
  PSCP_ASSERT(numTeps >= 1);
}

int64_t EventCycleAnalyzer::subtreeBound(StateId s) const {
  auto it = boundCache_.find(s);
  if (it != boundCache_.end()) return it->second;
  const statechart::State& st = chart_.state(s);
  // The state's own worst reaction: its longest outgoing transition.
  int64_t own = 0;
  for (TransitionId t : chart_.outgoing(s))
    own = std::max(own, lengths_.at(t));
  int64_t children = 0;
  switch (st.kind) {
    case StateKind::Basic:
      children = 0;
      break;
    case StateKind::Or: {
      // "At an OR-state, the maximum length transition of this node's
      //  children is computed."
      for (StateId c : st.children) children = std::max(children, subtreeBound(c));
      break;
    }
    case StateKind::And: {
      // "At an AND-state, the result is the sum of the lengths of the
      //  node's children."
      for (StateId c : st.children) children += subtreeBound(c);
      break;
    }
  }
  const int64_t bound = std::max(own, children);
  boundCache_[s] = bound;
  return bound;
}

int64_t EventCycleAnalyzer::parallelBurden(StateId state) const {
  // The heuristic *localizes* the problem (Sec. 4): only the siblings of
  // the innermost enclosing AND component are charged per exploration step
  // (Fig. 4 adds DataPreparation's single sibling bound of 300 per step).
  int64_t burden = 0;
  StateId cur = state;
  StateId parent = chart_.state(cur).parent;
  while (parent != statechart::kNoState) {
    const statechart::State& p = chart_.state(parent);
    if (p.kind == StateKind::And) {
      for (StateId sibling : p.children)
        if (sibling != cur) burden += subtreeBound(sibling);
      break;  // innermost AND only
    }
    cur = parent;
    parent = p.parent;
  }
  // Parallel siblings execute on other TEPs when the machine has them:
  // N processing elements absorb the sibling reactions concurrently.
  return (burden + numTeps_ - 1) / numTeps_;
}

bool EventCycleAnalyzer::transitionMentions(const Transition& t,
                                            const std::string& event) const {
  // Only *positive* occurrences consume the event (a "not X_PULSE" trigger
  // reacts to the event's absence).
  const auto trig = t.label.trigger.positiveNames();
  if (std::find(trig.begin(), trig.end(), event) != trig.end()) return true;
  const auto guard = t.label.guard.positiveNames();
  return std::find(guard.begin(), guard.end(), event) != guard.end();
}

std::vector<StateId> EventCycleAnalyzer::consumers(const std::string& event) const {
  std::vector<StateId> out;
  for (const statechart::State& s : chart_.states()) {
    for (TransitionId t : chart_.outgoing(s.id)) {
      if (transitionMentions(chart_.transition(t), event)) {
        out.push_back(s.id);
        break;
      }
    }
  }
  return out;
}

std::vector<EventCycle> EventCycleAnalyzer::analyze(const std::string& event,
                                                    int maxDepth) const {
  const std::vector<StateId> starts = consumers(event);
  const std::set<StateId> consumerSet(starts.begin(), starts.end());
  int64_t period = 0;
  if (chart_.hasEvent(event)) period = chart_.event(event).period;

  std::vector<EventCycle> found;
  // DFS from each consumer; a path ends when it reaches any consumer state
  // (a second consumption point). Self-loops count (e.g. {OpReady,
  // OpReady} in Table 3). States may not repeat otherwise (simple paths).
  struct Frame {
    StateId state;
    std::vector<StateId> states;
    std::vector<TransitionId> path;
    int64_t length;
  };
  for (StateId start : starts) {
    std::vector<Frame> stack;
    stack.push_back({start, {start}, {}, 0});
    while (!stack.empty()) {
      Frame f = std::move(stack.back());
      stack.pop_back();
      if (static_cast<int>(f.path.size()) >= maxDepth) continue;
      // A state's reactions include the transitions of its ancestors (they
      // exit this state too) — Fig. 4's graph is the tree plus transitions.
      std::vector<TransitionId> outs = chart_.outgoing(f.state);
      for (StateId anc = chart_.state(f.state).parent; anc != statechart::kNoState;
           anc = chart_.state(anc).parent)
        for (TransitionId t : chart_.outgoing(anc)) outs.push_back(t);
      for (TransitionId t : outs) {
        const Transition& tr = chart_.transition(t);
        Frame next = f;
        next.state = tr.target;
        next.states.push_back(tr.target);
        next.path.push_back(t);
        next.length += lengths_.at(t) + parallelBurden(tr.source);
        if (consumerSet.count(tr.target) != 0) {
          EventCycle cycle;
          cycle.event = event;
          cycle.states = next.states;
          cycle.path = next.path;
          cycle.length = next.length;
          cycle.period = period;
          found.push_back(std::move(cycle));
          continue;  // consumption point reached: path complete
        }
        // Simple-path restriction (the start may repeat as the end).
        if (std::count(f.states.begin(), f.states.end(), tr.target) != 0) continue;
        stack.push_back(std::move(next));
      }
    }
  }
  std::sort(found.begin(), found.end(), [](const EventCycle& a, const EventCycle& b) {
    if (a.length != b.length) return a.length < b.length;
    return a.states < b.states;
  });
  return found;
}

std::vector<EventCycle> EventCycleAnalyzer::analyzeConstrained(int maxDepth) const {
  std::vector<EventCycle> all;
  for (const auto& [name, decl] : chart_.events()) {
    if (decl.period <= 0) continue;
    auto cycles = analyze(name, maxDepth);
    all.insert(all.end(), cycles.begin(), cycles.end());
  }
  return all;
}

std::string renderEventCycleTable(const Chart& chart,
                                  const std::vector<EventCycle>& cycles) {
  std::vector<std::vector<std::string>> rows;
  for (const EventCycle& c : cycles) {
    rows.push_back({c.event, c.describe(chart), std::to_string(c.length),
                    c.period > 0 ? std::to_string(c.period) : "-",
                    c.violates() ? "VIOLATION" : "ok"});
  }
  return renderTable({"Event", "Cycle", "Length", "Period", "Status"}, rows);
}

}  // namespace pscp::timing
