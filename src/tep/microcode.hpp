// Microprogrammed control (paper Sec. 3.2, Table 1).
//
// "Each instruction of the TEP is represented by a microprogram containing
//  a sequence of microinstructions. Every microinstruction defines a set
//  of datapath control signals that are asserted in a single state. ...
//  In the basic TEP, microinstructions are 16 bits wide. The first eight
//  bits represent the control signals, and the other eight bit indicate
//  the address of the next microinstruction. The eight control bits are
//  further divided into 3 bits to denote the group of control signals,
//  and 5 bits to encode the control signals."
//
// The microcode generator expands each width-annotated ISA instruction
// into its microinstruction sequence for a concrete ArchConfig; the TEP
// simulator executes these microinstructions one clock each, so the
// simulator and the static timing analysis share one cost model.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hwlib/arch_config.hpp"
#include "tep/isa.hpp"

namespace pscp::tep {

/// Datapath control states. Each value is one microinstruction (one clock).
enum class MicroOp : uint8_t {
  // --- address-bus group (Table 1: 100 0xxxx)
  IFetch,       ///< IR <- pmem[PC++]
  IFetchOp,     ///< operand word <- pmem[PC++]
  MarLoad,      ///< MAR <- operand
  MarFromOp,    ///< MAR <- OP (indirect addressing)
  MarFromOpDisp,///< MAR <- OP + displacement (indexed addressing)
  MemRead,      ///< MDR chunk <- dmem[MAR + chunk*w]; arg = chunk index
  MemWrite,     ///< dmem[MAR + chunk*w] <- MDR chunk
  // --- single-signal group (011 xxxxx)
  Decode,       ///< microprogram dispatch
  MdrToAcc, AccToMdr, MdrToOp, AccToOp,
  AccLoadImm, OpLoadImm,
  RegToAcc, AccToReg, RegToOp,  ///< arg = register index
  PortRead, PortWrite,          ///< arg = port address
  EvSet, CondSet, CondClr, CondTest, StateTest,  ///< arg = CR index
  Tret,
  CostOnly,     ///< bus turnaround / wait filler
  // --- ALU group (001)
  AluChunk,     ///< arg = packed {aluSubOp, chunk, last}; carry chains chunks
  MulStep, DivStep,            ///< iterative multiply/divide steps
  MulExec, DivExec, ModExec,   ///< final/HW multiply, divide, modulo
  CmpExec,      ///< flags <- compare(ACC, OP), full width
  CustomExec,   ///< arg = custom instruction index
  // --- shift group (010 0xxxx)
  ShiftStep,    ///< one-position ripple shift step
  ShiftExec,    ///< final (or barrel single-cycle) shift; arg = count
  // --- jump group (101 0xxxx)
  Jump, JumpZ, JumpNZ, JumpN, JumpC,  ///< arg = target instruction index
  CallPush, RetPop,
};

[[nodiscard]] const char* microOpName(MicroOp op);

/// ALU sub-operations selected by the AluChunk control bits.
enum class AluSub : uint8_t { Add, Sub, And, Or, Xor, Not, Neg, Inc };

struct MicroInstr {
  MicroOp op = MicroOp::CostOnly;
  int32_t arg = 0;

  [[nodiscard]] bool operator==(const MicroInstr&) const = default;
};

/// Pack/unpack the AluChunk argument.
[[nodiscard]] int32_t packAlu(AluSub sub, int chunk, bool last);
void unpackAlu(int32_t arg, AluSub& sub, int& chunk, bool& last);

/// The microprogram implementing `instr` on configuration `config`.
/// This is where the space/time trade-off lives: wider datapaths shrink
/// chunk counts, the M/D unit collapses multiply loops, the comparator and
/// two's-complement units collapse their patterns, the barrel shifter
/// collapses shift loops, and external memory operands add wait states
/// (wait states are charged by the simulator, not emitted here).
[[nodiscard]] std::vector<MicroInstr> microcodeFor(const Instr& instr,
                                                   const hwlib::ArchConfig& config);

/// Cycles the instruction takes in the absence of stalls (microprogram
/// length); external-memory wait states are added by the simulator.
[[nodiscard]] int cyclesFor(const Instr& instr, const hwlib::ArchConfig& config);

// ------------------------------------------------ Table 1 microword format

/// Microinstruction group codes (Table 1).
enum class MicroGroup : uint8_t {
  Arithmetic = 0b001,  // control pattern 01x00
  Logical = 0b001,     // control pattern 000xx
  Shift = 0b010,
  SingleSignal = 0b011,
  AddressBus = 0b100,
  Jump = 0b101,
};

[[nodiscard]] MicroGroup microGroupOf(MicroOp op);

/// Encode one microinstruction into the 16-bit microword: 3-bit group,
/// 5-bit control code, 8-bit next-microinstruction address.
[[nodiscard]] uint16_t encodeMicroWord(const MicroInstr& mi, uint8_t nextAddr);
/// Extract the fields again (for tests and the decoder-ROM emitter).
void decodeMicroWord(uint16_t word, uint8_t& group, uint8_t& control, uint8_t& nextAddr);

/// The application-specific microprogram decoder: unique microprograms of
/// every (opcode, width) pair actually used by `program`. Its size in
/// microwords feeds the area model ("the specific microprogram decoder for
/// this application can therefore be easily synthesized").
struct MicrocodeRom {
  /// Key: mnemonic-with-width, e.g. "ADD.16".
  std::map<std::string, std::vector<MicroInstr>> programs;

  [[nodiscard]] int totalWords() const;
  /// Flat encoded ROM image (sequential next-addresses).
  [[nodiscard]] std::vector<uint16_t> encode() const;
};

[[nodiscard]] MicrocodeRom buildMicrocodeRom(const AsmProgram& program,
                                             const hwlib::ArchConfig& config);

}  // namespace pscp::tep
