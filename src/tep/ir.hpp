// Three-address IR for assembled TEP routines — the lowering target that
// feeds the native tier (src/tep/jit).
//
// The interpreter (tep/machine.cpp) is the reference semantics: it runs
// one micro-op per clock and derives its cycle counts from the
// microprogram lengths. The IR collapses each ISA instruction into a
// handful of explicit register-transfer ops over three virtual registers
// (ACC, OP and one address temp), with the instruction's *whole* static
// microprogram cost charged up front by a kAddCycles op. Dynamic costs
// that depend on runtime addresses (external-memory wait states) are
// charged by the memory ops themselves, so a lowered routine accounts the
// exact same cycle total as the interpreter on every path.
//
// Bit-identity contract: executing a lowered routine must produce the
// same ACC/OP/Z/N/C, the same host side effects in the same order
// (port/reg/memory writes, raised events, condition updates), the same
// cycle count, and the same error messages as the interpreter. Anything
// the lowering cannot prove it preserves must be rejected (the routine
// then stays on the interpreter tier forever).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwlib/arch_config.hpp"
#include "tep/isa.hpp"

namespace pscp::tep::ir {

/// Virtual registers. The TEP is an accumulator machine, so three are
/// enough: lowering never materialises more than one live temporary (the
/// effective address of an indirect access).
inline constexpr int kVregAcc = 0;
inline constexpr int kVregOp = 1;
inline constexpr int kVregTmp = 2;
inline constexpr int kVregCount = 3;

enum class IrOp : uint8_t {
  // Cost accounting. Every lowered ISA instruction begins with one of
  // these charging its static microprogram length; the op doubles as the
  // branch-target anchor for its ISA index (never removed by cleanups).
  kAddCycles,

  // Data movement (no flags).
  kLoadImm,  ///< dst = imm
  kCopy,     ///< dst = src1
  kMask,     ///< dst = src1 & imm
  kAddImm,   ///< dst = src1 + imm (raw 32-bit wrap; address arithmetic)

  // ALU at `width` bits: dst = trunc(op(src1[, src2]), width). Flags per
  // setZ/setN/setC (Z/N from the truncated result; C as the interpreter
  // defines it for Add/Sub).
  kAdd, kSub, kAnd, kOr, kXor, kNot, kNeg,
  kMul,     ///< low-width product, Z/N
  kDivMod,  ///< via helper; signedOp/isDiv select the variant; imm = ISA pc
            ///< for the division-by-zero diagnostic
  kCmp,     ///< flags only: Z = (a==b), N = signed <, C = unsigned <
  kShl, kShr, kSar,  ///< shift by imm (& 31); interpreter semantics

  // Data memory. imm = static byte address (kLoad/kStore) — dynamic forms
  // take it from src1. imm2 packs totalBytes | chunks<<8; the executor
  // charges `chunks` wait cycles when the base address is external and
  // surfaces unmapped-address errors exactly like the interpreter.
  kLoad,     ///< dst = mem[imm ..] & mask(width)
  kStore,    ///< mem[imm ..] = src1 & mask(width)
  kLoadAt,   ///< dst = mem[src1 ..] & mask(width)
  kStoreAt,  ///< mem[src1 ..] = src2 & mask(width)

  // Register bank / ports / CR (host calls; order-preserving).
  kRegGet,     ///< dst = readReg(imm) & mask(width)
  kRegSet,     ///< writeReg(imm, src1 & mask(width))
  kPortRead,   ///< dst = readPort(imm) — unmasked, like the interpreter
  kPortWrite,  ///< writePort(imm, src1 & mask); imm2 = micro-op time skew
  kEvSet,      ///< raiseEvent(imm)
  kCondSet,    ///< setCondition(imm, imm2 != 0)
  kCondTest,   ///< dst = testCondition(imm) ? 1 : 0; Z = !value
  kStateTest,  ///< dst = testState(imm) ? 1 : 0; Z = !value
  kCustom,     ///< dst = custom chain imm over (src1, src2); imm2 = chain
               ///< width; Z/N at that width

  // Control flow. imm = target ISA instruction index; imm2 = extra cycles
  // charged on the taken edge (jump threading folds skipped instructions'
  // static costs here).
  kJump, kJz, kJnz, kJn, kJc,
  kCall,  ///< shadow-stack call; overflow at depth 32
  kRet,   ///< shadow-stack return; underflow error on empty
  kTret,  ///< routine complete

  // Error exit: "PC imm ran off the program". Reached by jumps to invalid
  // targets and by falling off the end of the instruction stream.
  kRunOff,

  // Direct flag stores (constant folding residue; imm = 0/1).
  kSetZ, kSetN, kSetC,
};

[[nodiscard]] const char* irOpName(IrOp op);

struct IrInst {
  IrOp op = IrOp::kAddCycles;
  uint8_t width = 8;       ///< operation width in bits (1..32)
  bool signedOp = false;   ///< kDivMod: signed variant
  bool isDiv = false;      ///< kDivMod: quotient (else remainder)
  bool setZ = false, setN = false, setC = false;
  int8_t dst = -1, src1 = -1, src2 = -1;  ///< vregs, -1 = unused
  int32_t imm = 0;
  int32_t imm2 = 0;
  int32_t isa = -1;  ///< owning ISA instruction index (diagnostics/labels)

  [[nodiscard]] std::string str() const;
};

/// Cleanup-pass counters, reported by pscp_prof and asserted by tests.
struct IrStats {
  int isaInstructions = 0;
  int loweredOps = 0;   ///< before cleanups
  int finalOps = 0;     ///< after cleanups
  int constFolded = 0;  ///< ops rewritten/removed by constant folding
  int deadRemoved = 0;  ///< ops removed / flag writes cleared by DSE
  int jumpsThreaded = 0;
};

/// A lowered routine. `code` is ordered by ascending ISA index; the
/// kAddCycles op carrying `isa == i` anchors branch target `i`.
struct IrRoutine {
  int entryIsa = 0;
  std::vector<IrInst> code;
  bool hasCalls = false;
  IrStats stats;

  /// Offset in `code` of the anchor for ISA index `target`, or -1 when the
  /// target is not a lowered instruction (the executor emits a kRunOff
  /// stub for it).
  [[nodiscard]] int anchorOf(int target) const;

  [[nodiscard]] std::string listing() const;
};

struct LowerResult {
  bool ok = false;
  std::string reason;  ///< set when !ok (routine stays interpreted)
  IrRoutine routine;
};

/// Bounds that keep compilation cheap and the emitted code small. A
/// routine exceeding them is rejected (permanently interpreted), never
/// mis-compiled.
struct LowerLimits {
  int maxIrOps = 16384;
  int maxThreadingHops = 8;
};

/// Lower the routine entered at ISA index `entry`, then run constant
/// folding, dead-store elimination and jump threading. The program and
/// config must describe the machine the routine will run on (costs come
/// from the same microprograms the interpreter executes).
[[nodiscard]] LowerResult lowerRoutine(const AsmProgram& program, int entry,
                                       const hwlib::ArchConfig& config,
                                       const LowerLimits& limits = {});

}  // namespace pscp::tep::ir
