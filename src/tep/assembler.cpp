#include "tep/assembler.hpp"

#include <cctype>
#include <map>

#include "support/text.hpp"

namespace pscp::tep {
namespace {

const std::map<std::string, Opcode>& mnemonicTable() {
  static const std::map<std::string, Opcode> table = [] {
    std::map<std::string, Opcode> t;
    for (int i = 0; i <= static_cast<int>(Opcode::Custom); ++i) {
      const auto op = static_cast<Opcode>(i);
      t[opcodeMnemonic(op)] = op;
    }
    return t;
  }();
  return table;
}

struct Fixup {
  size_t instrIndex;
  std::string label;
  SourceLoc loc;
};

int64_t parseNumber(std::string_view text, const SourceLoc& loc) {
  try {
    size_t used = 0;
    const int64_t v = std::stoll(std::string(text), &used, 0);
    if (used != text.size()) throw std::invalid_argument(std::string(text));
    return v;
  } catch (const std::exception&) {
    failAt(loc, "malformed number '%s'", std::string(text).c_str());
  }
}

}  // namespace

AsmProgram assemble(std::string_view source, const std::string& file) {
  AsmProgram program;
  std::vector<Fixup> fixups;

  int lineNo = 0;
  for (const std::string& rawLine : splitOn(source, '\n')) {
    ++lineNo;
    const SourceLoc loc{file, lineNo, 1};
    std::string_view line = rawLine;
    if (const size_t semi = line.find(';'); semi != std::string_view::npos)
      line = line.substr(0, semi);
    line = trim(line);
    if (line.empty()) continue;

    // Routine directive.
    if (line.rfind(".routine", 0) == 0) {
      const std::string name(trim(line.substr(8)));
      if (!isIdentifier(name)) failAt(loc, "bad routine name '%s'", name.c_str());
      if (program.routines.count(name) != 0)
        failAt(loc, "routine '%s' declared twice", name.c_str());
      program.routines[name] = static_cast<int>(program.code.size());
      continue;
    }
    // Label.
    if (line.back() == ':') {
      const std::string name(trim(line.substr(0, line.size() - 1)));
      if (!isIdentifier(name)) failAt(loc, "bad label '%s'", name.c_str());
      if (program.labels.count(name) != 0)
        failAt(loc, "label '%s' defined twice", name.c_str());
      program.labels[name] = static_cast<int>(program.code.size());
      continue;
    }

    // Instruction: MNEMONIC[.width] [operand]
    size_t sp = line.find_first_of(" \t");
    std::string mnemonicPart(sp == std::string_view::npos ? line : line.substr(0, sp));
    std::string_view rest = sp == std::string_view::npos ? "" : trim(line.substr(sp));

    Instr instr;
    std::string mnemonic = toUpper(mnemonicPart);
    if (const size_t dot = mnemonic.find('.'); dot != std::string::npos) {
      instr.width = static_cast<int>(parseNumber(mnemonic.substr(dot + 1), loc));
      mnemonic = mnemonic.substr(0, dot);
    }
    auto it = mnemonicTable().find(mnemonic);
    if (it == mnemonicTable().end())
      failAt(loc, "unknown mnemonic '%s'", mnemonic.c_str());
    instr.op = it->second;
    if (instr.width != 8 && instr.width != 16 && instr.width != 32)
      failAt(loc, "unsupported width %d", instr.width);

    if (!rest.empty()) {
      if (rest[0] == '#') {
        instr.operand = static_cast<int32_t>(parseNumber(rest.substr(1), loc));
      } else if (rest[0] == '[') {
        if (rest.back() != ']') failAt(loc, "missing ']'");
        instr.operand =
            static_cast<int32_t>(parseNumber(trim(rest.substr(1, rest.size() - 2)), loc));
      } else if ((rest[0] == 'R' || rest[0] == 'r') && rest.size() > 1 &&
                 std::isdigit(static_cast<unsigned char>(rest[1])) != 0) {
        instr.operand = static_cast<int32_t>(parseNumber(rest.substr(1), loc));
      } else if (std::isdigit(static_cast<unsigned char>(rest[0])) != 0 ||
                 rest[0] == '-') {
        instr.operand = static_cast<int32_t>(parseNumber(rest, loc));
      } else {
        // Label reference (jump/call target), resolved in the second pass.
        const std::string label(rest);
        if (!isIdentifier(label)) failAt(loc, "bad operand '%s'", label.c_str());
        fixups.push_back({program.code.size(), label, loc});
      }
    }
    program.code.push_back(instr);
  }

  for (const Fixup& f : fixups) {
    auto lit = program.labels.find(f.label);
    if (lit != program.labels.end()) {
      program.code[f.instrIndex].operand = lit->second;
      continue;
    }
    auto rit = program.routines.find(f.label);
    if (rit != program.routines.end()) {
      program.code[f.instrIndex].operand = rit->second;
      continue;
    }
    failAt(f.loc, "undefined label '%s'", f.label.c_str());
  }
  return program;
}

}  // namespace pscp::tep
