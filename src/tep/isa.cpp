#include "tep/isa.hpp"

#include "support/bits.hpp"

namespace pscp::tep {

const char* opcodeMnemonic(Opcode op) {
  switch (op) {
    case Opcode::Nop: return "NOP";
    case Opcode::LdaImm: return "LDAI";
    case Opcode::LdaMem: return "LDA";
    case Opcode::LdaReg: return "LDAR";
    case Opcode::StaMem: return "STA";
    case Opcode::StaReg: return "STAR";
    case Opcode::LdoImm: return "LDOI";
    case Opcode::LdoMem: return "LDO";
    case Opcode::LdoReg: return "LDOR";
    case Opcode::LdaInd: return "LDAX";
    case Opcode::StaInd: return "STAX";
    case Opcode::LdaIdx: return "LDAD";
    case Opcode::StaIdx: return "STAD";
    case Opcode::Tao: return "TAO";
    case Opcode::Add: return "ADD";
    case Opcode::Sub: return "SUB";
    case Opcode::And: return "AND";
    case Opcode::Or: return "OR";
    case Opcode::Xor: return "XOR";
    case Opcode::Not: return "NOT";
    case Opcode::Neg: return "NEG";
    case Opcode::Mul: return "MUL";
    case Opcode::Div: return "DIV";
    case Opcode::Mod: return "MOD";
    case Opcode::Divu: return "DIVU";
    case Opcode::Modu: return "MODU";
    case Opcode::Cmp: return "CMP";
    case Opcode::Shl: return "SHL";
    case Opcode::Shr: return "SHR";
    case Opcode::Sar: return "SAR";
    case Opcode::Jmp: return "JMP";
    case Opcode::Jz: return "JZ";
    case Opcode::Jnz: return "JNZ";
    case Opcode::Jn: return "JN";
    case Opcode::Jc: return "JC";
    case Opcode::Call: return "CALL";
    case Opcode::Ret: return "RET";
    case Opcode::Inp: return "INP";
    case Opcode::Outp: return "OUTP";
    case Opcode::EvSet: return "EVSET";
    case Opcode::CSet: return "CSET";
    case Opcode::CClr: return "CCLR";
    case Opcode::CTst: return "CTST";
    case Opcode::STst: return "STST";
    case Opcode::Tret: return "TRET";
    case Opcode::Custom: return "CUST";
  }
  return "?";
}

bool hasOperandWord(Opcode op) {
  switch (op) {
    case Opcode::LdaImm:
    case Opcode::LdaMem:
    case Opcode::StaMem:
    case Opcode::LdoImm:
    case Opcode::LdoMem:
    case Opcode::Jmp:
    case Opcode::Jz:
    case Opcode::Jnz:
    case Opcode::Jn:
    case Opcode::Jc:
    case Opcode::Call:
      return true;
    default:
      return false;
  }
}

bool isWidthSensitive(Opcode op) {
  switch (op) {
    case Opcode::LdaImm:
    case Opcode::LdaMem:
    case Opcode::LdaReg:
    case Opcode::StaMem:
    case Opcode::StaReg:
    case Opcode::LdoImm:
    case Opcode::LdoMem:
    case Opcode::LdoReg:
    case Opcode::LdaInd:
    case Opcode::StaInd:
    case Opcode::LdaIdx:
    case Opcode::StaIdx:
    case Opcode::Tao:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Not:
    case Opcode::Neg:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::Divu:
    case Opcode::Modu:
    case Opcode::Cmp:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Sar:
      return true;
    default:
      return false;
  }
}

std::string Instr::str() const {
  std::string out = opcodeMnemonic(op);
  if (isWidthSensitive(op)) out += strfmt(".%d", width);
  switch (op) {
    case Opcode::Nop:
    case Opcode::Ret:
    case Opcode::Tret:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Not:
    case Opcode::Neg:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::Divu:
    case Opcode::Modu:
    case Opcode::Cmp:
      return out;
    case Opcode::LdaImm:
    case Opcode::LdoImm:
      return out + strfmt(" #%d", operand);
    case Opcode::LdaMem:
    case Opcode::StaMem:
    case Opcode::LdoMem:
      return out + strfmt(" [0x%X]", operand);
    case Opcode::LdaReg:
    case Opcode::StaReg:
    case Opcode::LdoReg:
      return out + strfmt(" R%d", operand);
    default:
      return out + strfmt(" %d", operand);
  }
}

int AsmProgram::entryOf(const std::string& routine) const {
  auto it = routines.find(routine);
  if (it == routines.end()) fail("program has no routine '%s'", routine.c_str());
  return it->second;
}

std::string AsmProgram::listing() const {
  // Invert the label/routine maps for printing.
  std::map<int, std::vector<std::string>> marks;
  for (const auto& [name, index] : labels) marks[index].push_back(name + ":");
  for (const auto& [name, index] : routines) marks[index].push_back(name + "::");
  std::string out;
  for (size_t i = 0; i < code.size(); ++i) {
    auto it = marks.find(static_cast<int>(i));
    if (it != marks.end())
      for (const std::string& m : it->second) out += m + "\n";
    out += strfmt("  %4zu  %s\n", i, code[i].str().c_str());
  }
  return out;
}

int AsmProgram::programWords() const {
  int words = 0;
  for (const Instr& in : code) words += hasOperandWord(in.op) ? 2 : 1;
  return words;
}

namespace {
int widthCode(int width) {
  switch (width) {
    case 8: return 0;
    case 16: return 1;
    case 32: return 2;
    default: fail("unencodable instruction width %d", width);
  }
}
int widthFromCode(int code) {
  switch (code) {
    case 0: return 8;
    case 1: return 16;
    case 2: return 32;
    default: fail("bad width code %d", code);
  }
}
}  // namespace

std::vector<uint16_t> encodeInstr(const Instr& instr) {
  const auto opbits = static_cast<uint16_t>(instr.op);
  PSCP_ASSERT(opbits < 64);
  uint16_t first = static_cast<uint16_t>(opbits << 10);
  first |= static_cast<uint16_t>(widthCode(isWidthSensitive(instr.op) ? instr.width : 8) << 8);
  if (hasOperandWord(instr.op)) {
    if (instr.operand < -32768 || instr.operand > 65535)
      fail("operand %d of %s does not fit a 16-bit word", instr.operand,
           opcodeMnemonic(instr.op));
    return {first, static_cast<uint16_t>(instr.operand & 0xFFFF)};
  }
  if (instr.operand < 0 || instr.operand > 255)
    fail("inline operand %d of %s does not fit 8 bits", instr.operand,
         opcodeMnemonic(instr.op));
  first |= static_cast<uint16_t>(instr.operand & 0xFF);
  return {first};
}

std::vector<uint16_t> encodeProgram(const AsmProgram& program) {
  std::vector<uint16_t> words;
  words.reserve(static_cast<size_t>(program.programWords()));
  for (const Instr& in : program.code) {
    const std::vector<uint16_t> w = encodeInstr(in);
    words.insert(words.end(), w.begin(), w.end());
  }
  return words;
}

Instr decodeInstr(const std::vector<uint16_t>& words, size_t& at) {
  if (at >= words.size()) fail("decode past end of program");
  const uint16_t first = words[at++];
  Instr instr;
  const int opbits = first >> 10;
  if (opbits > static_cast<int>(Opcode::Custom))
    fail("bad opcode bits %d", opbits);
  instr.op = static_cast<Opcode>(opbits);
  instr.width = widthFromCode((first >> 8) & 0x3);
  if (hasOperandWord(instr.op)) {
    if (at >= words.size()) fail("missing operand word");
    const uint16_t ow = words[at++];
    // Sign-extend immediates; addresses/jump targets are non-negative and
    // below 0x8000, so sign extension never corrupts them.
    instr.operand = (instr.op == Opcode::LdaImm || instr.op == Opcode::LdoImm)
                        ? signExtend(ow, 16)
                        : static_cast<int32_t>(ow);
  } else {
    instr.operand = first & 0xFF;
  }
  return instr;
}

}  // namespace pscp::tep
