#include "tep/microcode.hpp"

namespace pscp::tep {

const char* microOpName(MicroOp op) {
  switch (op) {
    case MicroOp::IFetch: return "ifetch";
    case MicroOp::IFetchOp: return "ifetch_op";
    case MicroOp::MarLoad: return "mar_load";
    case MicroOp::MarFromOp: return "op>mar";
    case MicroOp::MarFromOpDisp: return "op+d>mar";
    case MicroOp::MemRead: return "mem_read";
    case MicroOp::MemWrite: return "mem_write";
    case MicroOp::Decode: return "decode";
    case MicroOp::MdrToAcc: return "mdr>acc";
    case MicroOp::AccToMdr: return "acc>mdr";
    case MicroOp::MdrToOp: return "mdr>op";
    case MicroOp::AccToOp: return "acc>op";
    case MicroOp::AccLoadImm: return "acc_imm";
    case MicroOp::OpLoadImm: return "op_imm";
    case MicroOp::RegToAcc: return "reg>acc";
    case MicroOp::AccToReg: return "acc>reg";
    case MicroOp::RegToOp: return "reg>op";
    case MicroOp::PortRead: return "port_rd";
    case MicroOp::PortWrite: return "port_wr";
    case MicroOp::EvSet: return "ev_set";
    case MicroOp::CondSet: return "cond_set";
    case MicroOp::CondClr: return "cond_clr";
    case MicroOp::CondTest: return "cond_tst";
    case MicroOp::StateTest: return "state_tst";
    case MicroOp::Tret: return "tret";
    case MicroOp::CostOnly: return "wait";
    case MicroOp::AluChunk: return "alu";
    case MicroOp::MulStep: return "mul_step";
    case MicroOp::DivStep: return "div_step";
    case MicroOp::MulExec: return "mul";
    case MicroOp::DivExec: return "div";
    case MicroOp::ModExec: return "mod";
    case MicroOp::CmpExec: return "cmp";
    case MicroOp::CustomExec: return "custom";
    case MicroOp::ShiftStep: return "shift_step";
    case MicroOp::ShiftExec: return "shift";
    case MicroOp::Jump: return "jmp";
    case MicroOp::JumpZ: return "jz";
    case MicroOp::JumpNZ: return "jnz";
    case MicroOp::JumpN: return "jn";
    case MicroOp::JumpC: return "jc";
    case MicroOp::CallPush: return "call";
    case MicroOp::RetPop: return "ret";
  }
  return "?";
}

int32_t packAlu(AluSub sub, int chunk, bool last) {
  return static_cast<int32_t>(sub) | (chunk << 8) | (last ? (1 << 15) : 0);
}

void unpackAlu(int32_t arg, AluSub& sub, int& chunk, bool& last) {
  sub = static_cast<AluSub>(arg & 0xFF);
  chunk = (arg >> 8) & 0x7F;
  last = (arg & (1 << 15)) != 0;
}

namespace {

/// Iteration cost factors for the microcoded (no-M/D-unit) multiply and
/// divide: shift-add/shift-subtract loops take a few states per operand
/// bit. These constants set the space/time cliff that Table 4 shows when
/// the M/D unit is added.
constexpr int kMulStepsPerBit = 3;
constexpr int kDivStepsPerBit = 4;
/// The hardware M/D unit is an iterative (multi-cycle) unit: 2 bits/cycle.
constexpr int kHwMulDivBitsPerCycle = 2;

void emitAluChunks(std::vector<MicroInstr>& u, AluSub sub, int chunks) {
  for (int c = 0; c < chunks; ++c)
    u.push_back({MicroOp::AluChunk, packAlu(sub, c, c == chunks - 1)});
}

}  // namespace

std::vector<MicroInstr> microcodeFor(const Instr& instr, const hwlib::ArchConfig& config) {
  const int chunks = config.chunksFor(instr.width);
  std::vector<MicroInstr> u;
  // The fetch state doubles as dispatch: the opcode field indexes the
  // microprogram ROM directly (the "next microinstruction address" of
  // Table 1), so there is no separate decode cycle. The pipelined TEP
  // (paper Sec. 6, future work) prefetches during the previous
  // instruction's execution and only pays the fetch state after control
  // transfers, which flush the prefetch.
  const bool flushesPrefetch = [&] {
    switch (instr.op) {
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Jnz:
      case Opcode::Jn:
      case Opcode::Jc:
      case Opcode::Call:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
  }();
  if (!config.pipelinedFetch || flushesPrefetch) u.push_back({MicroOp::IFetch, 0});
  if (hasOperandWord(instr.op)) u.push_back({MicroOp::IFetchOp, 0});

  switch (instr.op) {
    case Opcode::Nop:
      u.push_back({MicroOp::CostOnly, 0});
      break;

    // ------------------------------------------------------------ loads
    case Opcode::LdaImm: {
      // Immediates arrive over the program bus one datapath word at a time.
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::AccLoadImm, c});
      break;
    }
    case Opcode::LdoImm: {
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::OpLoadImm, c});
      break;
    }
    case Opcode::LdaMem: {
      // The operand word latches straight into MAR during its fetch state,
      // so no separate MAR-load state is needed.
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::MemRead, c});
      u.push_back({MicroOp::MdrToAcc, 0});
      break;
    }
    case Opcode::LdoMem: {
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::MemRead, c});
      u.push_back({MicroOp::MdrToOp, 0});
      break;
    }
    case Opcode::StaMem: {
      u.push_back({MicroOp::AccToMdr, 0});
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::MemWrite, c});
      break;
    }
    case Opcode::LdaInd: {
      // OP drives the address bus (indexed access).
      u.push_back({MicroOp::MarFromOp, 0});
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::MemRead, c});
      u.push_back({MicroOp::MdrToAcc, 0});
      break;
    }
    case Opcode::StaInd: {
      u.push_back({MicroOp::MarFromOp, 0});
      u.push_back({MicroOp::AccToMdr, 0});
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::MemWrite, c});
      break;
    }
    case Opcode::LdaIdx: {
      u.push_back({MicroOp::MarFromOpDisp, instr.operand});
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::MemRead, c});
      u.push_back({MicroOp::MdrToAcc, 0});
      break;
    }
    case Opcode::StaIdx: {
      u.push_back({MicroOp::MarFromOpDisp, instr.operand});
      u.push_back({MicroOp::AccToMdr, 0});
      for (int c = 0; c < chunks; ++c) u.push_back({MicroOp::MemWrite, c});
      break;
    }
    case Opcode::Tao:
      u.push_back({MicroOp::AccToOp, 0});
      break;
    case Opcode::LdaReg:
      u.push_back({MicroOp::RegToAcc, instr.operand});
      break;
    case Opcode::LdoReg:
      u.push_back({MicroOp::RegToOp, instr.operand});
      break;
    case Opcode::StaReg:
      u.push_back({MicroOp::AccToReg, instr.operand});
      break;

    // -------------------------------------------------------------- ALU
    case Opcode::Add: emitAluChunks(u, AluSub::Add, chunks); break;
    case Opcode::Sub: emitAluChunks(u, AluSub::Sub, chunks); break;
    case Opcode::And: emitAluChunks(u, AluSub::And, chunks); break;
    case Opcode::Or: emitAluChunks(u, AluSub::Or, chunks); break;
    case Opcode::Xor: emitAluChunks(u, AluSub::Xor, chunks); break;
    case Opcode::Not: emitAluChunks(u, AluSub::Not, chunks); break;
    case Opcode::Neg: {
      if (config.hasTwosComplement) {
        // Dedicated two's-complement unit: one state regardless of width
        // (pattern optimization "x = -x" from Sec. 4).
        u.push_back({MicroOp::AluChunk, packAlu(AluSub::Neg, 0, true)});
      } else {
        // Complement then increment, chunked.
        emitAluChunks(u, AluSub::Not, chunks);
        emitAluChunks(u, AluSub::Inc, chunks);
      }
      break;
    }
    case Opcode::Mul: {
      if (config.hasMulDiv) {
        const int steps = (instr.width + kHwMulDivBitsPerCycle - 1) / kHwMulDivBitsPerCycle;
        for (int i = 0; i < steps - 1; ++i) u.push_back({MicroOp::MulStep, 0});
        u.push_back({MicroOp::MulExec, 0});
      } else {
        const int steps = instr.width * kMulStepsPerBit;
        for (int i = 0; i < steps - 1; ++i) u.push_back({MicroOp::MulStep, 0});
        u.push_back({MicroOp::MulExec, 0});
      }
      break;
    }
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::Divu:
    case Opcode::Modu: {
      const MicroOp fin = (instr.op == Opcode::Div || instr.op == Opcode::Divu)
                              ? MicroOp::DivExec
                              : MicroOp::ModExec;
      if (config.hasMulDiv) {
        const int steps = (instr.width + kHwMulDivBitsPerCycle - 1) / kHwMulDivBitsPerCycle;
        for (int i = 0; i < steps - 1; ++i) u.push_back({MicroOp::DivStep, 0});
        u.push_back({fin, 0});
      } else {
        const int steps = instr.width * kDivStepsPerBit;
        for (int i = 0; i < steps - 1; ++i) u.push_back({MicroOp::DivStep, 0});
        u.push_back({fin, 0});
      }
      break;
    }
    case Opcode::Cmp: {
      if (config.hasComparator) {
        // Dedicated comparator: single state (pattern "if (a == b)").
        u.push_back({MicroOp::CmpExec, 0});
      } else {
        for (int c = 0; c < chunks - 1; ++c)
          u.push_back({MicroOp::AluChunk, packAlu(AluSub::Sub, c, false)});
        u.push_back({MicroOp::CmpExec, 0});
      }
      break;
    }
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Sar: {
      if (config.hasBarrelShifter) {
        u.push_back({MicroOp::ShiftExec, instr.operand});
      } else {
        const int steps = instr.operand * chunks;
        for (int i = 0; i < steps - 1; ++i) u.push_back({MicroOp::ShiftStep, 0});
        u.push_back({MicroOp::ShiftExec, instr.operand});
      }
      break;
    }

    // ----------------------------------------------------- control flow
    case Opcode::Jmp: u.push_back({MicroOp::Jump, instr.operand}); break;
    case Opcode::Jz: u.push_back({MicroOp::JumpZ, instr.operand}); break;
    case Opcode::Jnz: u.push_back({MicroOp::JumpNZ, instr.operand}); break;
    case Opcode::Jn: u.push_back({MicroOp::JumpN, instr.operand}); break;
    case Opcode::Jc: u.push_back({MicroOp::JumpC, instr.operand}); break;
    case Opcode::Call: u.push_back({MicroOp::CallPush, instr.operand}); break;
    case Opcode::Ret: u.push_back({MicroOp::RetPop, 0}); break;

    // -------------------------------------------------- ports & the SLA
    case Opcode::Inp: u.push_back({MicroOp::PortRead, instr.operand}); break;
    case Opcode::Outp: u.push_back({MicroOp::PortWrite, instr.operand}); break;
    case Opcode::EvSet: u.push_back({MicroOp::EvSet, instr.operand}); break;
    case Opcode::CSet: u.push_back({MicroOp::CondSet, instr.operand}); break;
    case Opcode::CClr: u.push_back({MicroOp::CondClr, instr.operand}); break;
    case Opcode::CTst: u.push_back({MicroOp::CondTest, instr.operand}); break;
    case Opcode::STst: u.push_back({MicroOp::StateTest, instr.operand}); break;
    case Opcode::Tret: u.push_back({MicroOp::Tret, 0}); break;
    case Opcode::Custom: u.push_back({MicroOp::CustomExec, instr.operand}); break;
  }
  return u;
}

int cyclesFor(const Instr& instr, const hwlib::ArchConfig& config) {
  return static_cast<int>(microcodeFor(instr, config).size());
}

MicroGroup microGroupOf(MicroOp op) {
  switch (op) {
    case MicroOp::AluChunk:
    case MicroOp::MulStep:
    case MicroOp::DivStep:
    case MicroOp::MulExec:
    case MicroOp::DivExec:
    case MicroOp::ModExec:
    case MicroOp::CmpExec:
    case MicroOp::CustomExec:
      return MicroGroup::Arithmetic;
    case MicroOp::ShiftStep:
    case MicroOp::ShiftExec:
      return MicroGroup::Shift;
    case MicroOp::IFetch:
    case MicroOp::IFetchOp:
    case MicroOp::MarLoad:
    case MicroOp::MarFromOp:
    case MicroOp::MarFromOpDisp:
    case MicroOp::MemRead:
    case MicroOp::MemWrite:
      return MicroGroup::AddressBus;
    case MicroOp::Jump:
    case MicroOp::JumpZ:
    case MicroOp::JumpNZ:
    case MicroOp::JumpN:
    case MicroOp::JumpC:
    case MicroOp::CallPush:
    case MicroOp::RetPop:
      return MicroGroup::Jump;
    default:
      return MicroGroup::SingleSignal;
  }
}

namespace {
/// 5-bit control code within a group. For the arithmetic group the paper
/// distinguishes arithmetic (01x00) from logical (000xx) patterns; we honor
/// that by reserving code ranges.
uint8_t controlCodeOf(MicroOp op) {
  switch (op) {
    // Arithmetic group: arithmetic ops use 01x00-style codes (bit 3 set).
    case MicroOp::AluChunk: return 0b01000;
    case MicroOp::MulStep: return 0b01100;
    case MicroOp::MulExec: return 0b01101;
    case MicroOp::DivStep: return 0b01110;
    case MicroOp::DivExec: return 0b01111;
    case MicroOp::ModExec: return 0b01011;
    // Logical/compare use 000xx codes.
    case MicroOp::CmpExec: return 0b00001;
    case MicroOp::CustomExec: return 0b00010;
    // Shift group.
    case MicroOp::ShiftStep: return 0b00000;
    case MicroOp::ShiftExec: return 0b00001;
    // Address-bus group.
    case MicroOp::IFetch: return 0b00000;
    case MicroOp::IFetchOp: return 0b00001;
    case MicroOp::MarLoad: return 0b00010;
    case MicroOp::MemRead: return 0b00011;
    case MicroOp::MemWrite: return 0b00100;
    case MicroOp::MarFromOp: return 0b00101;
    case MicroOp::MarFromOpDisp: return 0b00110;
    // Jump group.
    case MicroOp::Jump: return 0b00000;
    case MicroOp::JumpZ: return 0b00001;
    case MicroOp::JumpNZ: return 0b00010;
    case MicroOp::JumpN: return 0b00011;
    case MicroOp::JumpC: return 0b00100;
    case MicroOp::CallPush: return 0b00101;
    case MicroOp::RetPop: return 0b00110;
    // Single-signal group: one code per signal.
    case MicroOp::Decode: return 0b00000;
    case MicroOp::MdrToAcc: return 0b00001;
    case MicroOp::AccToMdr: return 0b00010;
    case MicroOp::MdrToOp: return 0b00011;
    case MicroOp::AccLoadImm: return 0b00100;
    case MicroOp::OpLoadImm: return 0b00101;
    case MicroOp::RegToAcc: return 0b00110;
    case MicroOp::AccToReg: return 0b00111;
    case MicroOp::RegToOp: return 0b01000;
    case MicroOp::PortRead: return 0b01001;
    case MicroOp::PortWrite: return 0b01010;
    case MicroOp::EvSet: return 0b01011;
    case MicroOp::CondSet: return 0b01100;
    case MicroOp::CondClr: return 0b01101;
    case MicroOp::CondTest: return 0b01110;
    case MicroOp::StateTest: return 0b01111;
    case MicroOp::Tret: return 0b10000;
    case MicroOp::CostOnly: return 0b10001;
    case MicroOp::AccToOp: return 0b10010;
  }
  return 0;
}
}  // namespace

uint16_t encodeMicroWord(const MicroInstr& mi, uint8_t nextAddr) {
  const auto group = static_cast<uint16_t>(microGroupOf(mi.op));
  const uint16_t control = controlCodeOf(mi.op);
  return static_cast<uint16_t>((group << 13) | (control << 8) | nextAddr);
}

void decodeMicroWord(uint16_t word, uint8_t& group, uint8_t& control, uint8_t& nextAddr) {
  group = static_cast<uint8_t>(word >> 13);
  control = static_cast<uint8_t>((word >> 8) & 0x1F);
  nextAddr = static_cast<uint8_t>(word & 0xFF);
}

int MicrocodeRom::totalWords() const {
  int words = 0;
  for (const auto& [key, prog] : programs) words += static_cast<int>(prog.size());
  return words;
}

std::vector<uint16_t> MicrocodeRom::encode() const {
  std::vector<uint16_t> rom;
  for (const auto& [key, prog] : programs) {
    for (size_t i = 0; i < prog.size(); ++i) {
      // Sequential next-address; the final state returns to fetch (address
      // 0 by convention).
      const uint8_t next =
          (i + 1 < prog.size()) ? static_cast<uint8_t>((rom.size() + 1) & 0xFF) : 0;
      rom.push_back(encodeMicroWord(prog[i], next));
    }
  }
  return rom;
}

MicrocodeRom buildMicrocodeRom(const AsmProgram& program, const hwlib::ArchConfig& config) {
  MicrocodeRom rom;
  for (const Instr& in : program.code) {
    std::string key = opcodeMnemonic(in.op);
    if (isWidthSensitive(in.op)) key += strfmt(".%d", in.width);
    // Shift microprograms additionally depend on the count without a
    // barrel shifter.
    const bool isShift =
        in.op == Opcode::Shl || in.op == Opcode::Shr || in.op == Opcode::Sar;
    if (isShift && !config.hasBarrelShifter) key += strfmt("/%d", in.operand);
    if (rom.programs.count(key) != 0) continue;
    Instr normalized = in;
    // Operands do not change the microprogram shape (they feed the datapath
    // as literals), except for shift counts handled above.
    if (!isShift) normalized.operand = 0;
    rom.programs[key] = microcodeFor(normalized, config);
  }
  return rom;
}

}  // namespace pscp::tep
