// Two-pass assembler for TEP assembly text.
//
// Syntax (one instruction per line; ';' starts a comment):
//
//   .routine InitializeAll      ; transition-routine entry point
//   loop:                       ; label
//     LDAI.16 #-5               ; immediate
//     LDA.16  [0x4000]          ; memory absolute
//     LDAR    R3                ; register
//     ADD.16                    ; ACC <- ACC + OP
//     SHL.16  2                 ; shift count
//     JNZ     loop              ; label reference
//     INP     0x17              ; port address
//     EVSET   3                 ; CR event index
//     TRET
//
// The ".W" width suffix defaults to 8 when omitted.
#pragma once

#include <string_view>

#include "tep/isa.hpp"

namespace pscp::tep {

[[nodiscard]] AsmProgram assemble(std::string_view source,
                                  const std::string& file = "<asm>");

}  // namespace pscp::tep
