// TEP instruction set (paper Sec. 3.2).
//
// The TEP is an accumulator machine: most ALU instructions combine the
// accumulator (ACC) with the second operand register (OP) and write ACC.
// "The instruction set includes load and store instructions, basic
//  arithmetic and logic instructions, shift instructions, jump
//  instructions, and port instructions. Further operations reset the
//  transition registers, perform calls to the transition routines, and
//  communicate with the SLA."
//
// Instructions are width-annotated: a 16-bit operation on an 8-bit
// datapath expands into a longer microprogram (chunked execution), which
// is exactly how the architecture selection trades area against time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace pscp::tep {

enum class Opcode : uint8_t {
  Nop,
  // Loads / stores. ACC is the accumulator, OP the second operand register.
  LdaImm, LdaMem, LdaReg,
  StaMem, StaReg,
  LdoImm, LdoMem, LdoReg,
  // Indirect addressing: OP holds the byte address (array indexing).
  LdaInd, StaInd,
  // Indexed with displacement: address = OP + operand (record fields of a
  // dynamically selected array element).
  LdaIdx, StaIdx,
  // Register transfer: OP <- ACC.
  Tao,
  // ALU: ACC <- ACC <op> OP (unary ops use ACC only). Flags Z/N/C updated.
  Add, Sub, And, Or, Xor, Not, Neg,
  Mul, Div, Mod, Divu, Modu,
  Cmp,            ///< flags from compare(ACC, OP), ACC unchanged
  // Shifts by an immediate count (operand). Shr is logical, Sar arithmetic.
  Shl, Shr, Sar,
  // Control flow. Operand is an instruction index (program word address).
  Jmp, Jz, Jnz, Jn, Jc, Call, Ret,
  // Port architecture (operand = port address on the data bus).
  Inp, Outp,
  // SLA communication (operand = event/condition/state index in the CR).
  EvSet, CSet, CClr, CTst, STst,
  // End of transition routine: signal the scheduler, release the TEP.
  Tret,
  // Application-specific single-cycle instruction (operand = table index).
  Custom,
};

[[nodiscard]] const char* opcodeMnemonic(Opcode op);

/// True if the instruction's operand is a second 16-bit program word
/// (addresses, 16/32-bit immediates, jump targets); small operands (reg
/// index, port address, CR index) ride in the first word.
[[nodiscard]] bool hasOperandWord(Opcode op);

/// True for instructions that use the width annotation.
[[nodiscard]] bool isWidthSensitive(Opcode op);

struct Instr {
  Opcode op = Opcode::Nop;
  int width = 8;        ///< operation width in bits (8/16/32)
  int32_t operand = 0;  ///< address / immediate / reg / port / CR index / target

  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool operator==(const Instr&) const = default;
};

/// Data memory map. Addresses below the boundary are TEP-internal RAM
/// (fast); at or above, external RAM (cheap, wait-stated, shared bus).
inline constexpr int32_t kExternalBase = 0x4000;
inline constexpr int32_t kExternalSize = 0x4000;

[[nodiscard]] inline bool isExternalAddress(int32_t addr) {
  return addr >= kExternalBase;
}

/// Designer-asserted iteration bound for a loop region [begin, end) of the
/// instruction stream — carried from the action language's `while ... bound
/// N` through codegen so the static WCET analysis can bound back edges.
struct LoopRegion {
  int begin = 0;  ///< first instruction of the loop (header test)
  int end = 0;    ///< one past the loop's back-edge jump
  int64_t bound = 1;
};

/// An assembled program: a flat instruction vector plus label and routine
/// entry-point tables (transition routines are entered via the Transition
/// Address Table).
struct AsmProgram {
  std::vector<Instr> code;
  std::map<std::string, int> labels;       ///< label -> instruction index
  std::map<std::string, int> routines;     ///< routine name -> entry index
  std::vector<LoopRegion> loops;           ///< WCET loop-bound annotations

  [[nodiscard]] int entryOf(const std::string& routine) const;
  [[nodiscard]] std::string listing() const;

  /// Program memory footprint in 16-bit words (operand words included).
  [[nodiscard]] int programWords() const;
};

// ------------------------------------------------------- binary encoding
//
// Primary word layout:  [15:10] opcode  [9:8] width code  [7:0] operand
// Width codes: 0 = 8, 1 = 16, 2 = 32. Instructions with hasOperandWord()
// put the operand in a second word and leave [7:0] zero.

[[nodiscard]] std::vector<uint16_t> encodeInstr(const Instr& instr);
[[nodiscard]] std::vector<uint16_t> encodeProgram(const AsmProgram& program);
/// Inverse of encodeInstr; consumes 1 or 2 words starting at `at`,
/// advancing it. Throws on malformed words.
[[nodiscard]] Instr decodeInstr(const std::vector<uint16_t>& words, size_t& at);

}  // namespace pscp::tep
