#include "tep/machine.hpp"

#include "support/bits.hpp"

namespace pscp::tep {

// ------------------------------------------------------------- SimpleHost

SimpleHost::SimpleHost()
    : internal_(kExternalBase, 0), external_(kExternalSize, 0), regs_(16, 0) {}

uint8_t SimpleHost::readByte(int32_t addr) {
  if (addr >= 0 && addr < kExternalBase) return internal_[static_cast<size_t>(addr)];
  if (isExternalAddress(addr) && addr < kExternalBase + kExternalSize)
    return external_[static_cast<size_t>(addr - kExternalBase)];
  fail("data read from unmapped address 0x%X", addr);
}

void SimpleHost::writeByte(int32_t addr, uint8_t value) {
  if (addr >= 0 && addr < kExternalBase) {
    internal_[static_cast<size_t>(addr)] = value;
    return;
  }
  if (isExternalAddress(addr) && addr < kExternalBase + kExternalSize) {
    external_[static_cast<size_t>(addr - kExternalBase)] = value;
    return;
  }
  fail("data write to unmapped address 0x%X", addr);
}

uint32_t SimpleHost::readReg(int index) {
  PSCP_ASSERT(index >= 0 && index < static_cast<int>(regs_.size()));
  return regs_[static_cast<size_t>(index)];
}

void SimpleHost::writeReg(int index, uint32_t value) {
  PSCP_ASSERT(index >= 0 && index < static_cast<int>(regs_.size()));
  regs_[static_cast<size_t>(index)] = value;
}

uint32_t SimpleHost::readPort(int address) { return ports[address]; }

void SimpleHost::writePort(int address, uint32_t value) { ports[address] = value; }

void SimpleHost::raiseEvent(int index) { raisedEvents.push_back(index); }

void SimpleHost::setCondition(int index, bool value) { conditions[index] = value; }

bool SimpleHost::testCondition(int index) { return conditions[index]; }

bool SimpleHost::testState(int index) { return states[index]; }

uint32_t SimpleHost::readWord(int32_t addr, int bytes) {
  uint32_t v = 0;
  for (int i = 0; i < bytes; ++i)
    v |= static_cast<uint32_t>(readByte(addr + i)) << (8 * i);
  return v;
}

void SimpleHost::writeWord(int32_t addr, uint32_t value, int bytes) {
  for (int i = 0; i < bytes; ++i)
    writeByte(addr + i, static_cast<uint8_t>((value >> (8 * i)) & 0xFF));
}

// -------------------------------------------------------------------- Tep

Tep::Tep(const hwlib::ArchConfig& config, TepHost& host, int id)
    : config_(config), host_(host), id_(id) {
  config_.validate();
  callStack_.reserve(32);
}

void Tep::setProgram(const AsmProgram* program) {
  program_ = program;
  microCache_.clear();
  microByPc_.assign(program != nullptr ? program->code.size() : 0, nullptr);
}

const std::vector<MicroInstr>& Tep::microProgramFor(const Instr& instr) {
  std::string key = opcodeMnemonic(instr.op);
  if (isWidthSensitive(instr.op)) key += strfmt(".%d", instr.width);
  const bool isShift =
      instr.op == Opcode::Shl || instr.op == Opcode::Shr || instr.op == Opcode::Sar;
  if (isShift && !config_.hasBarrelShifter) key += strfmt("/%d", instr.operand);
  auto it = microCache_.find(key);
  if (it == microCache_.end())
    it = microCache_.emplace(key, microcodeFor(instr, config_)).first;
  return it->second;
}

void Tep::startRoutine(int entry) {
  PSCP_ASSERT(program_ != nullptr);
  PSCP_ASSERT(entry >= 0 && entry < static_cast<int>(program_->code.size()));
  pc_ = entry;
  callStack_.clear();
  busy_ = true;
  extPhase_ = 0;
  beginInstruction();
}

void Tep::beginInstruction() {
  if (pc_ < 0 || pc_ >= static_cast<int>(program_->code.size()))
    fail("TEP%d: PC %d ran off the program (size %zu)", id_, pc_, program_->code.size());
  current_ = program_->code[static_cast<size_t>(pc_)];
  // Program memory is immutable while loaded, so the microprogram of a
  // given PC never changes: resolve it once, then hit the pointer table.
  const std::vector<MicroInstr>*& slot = microByPc_[static_cast<size_t>(pc_)];
  if (slot == nullptr) slot = &microProgramFor(current_);
  microProgram_ = slot;
  microPc_ = 0;
  // The PC advances as the instruction enters execution; the IFetch state
  // (when present — the pipelined TEP overlaps it away) is pure cost.
  ++pc_;
}

namespace {
bool needsExternalBus(const MicroInstr& mi, int32_t mar) {
  return (mi.op == MicroOp::MemRead || mi.op == MicroOp::MemWrite) &&
         isExternalAddress(mar);
}
}  // namespace

void Tep::stepCycle() {
  if (!busy_) return;
  ++cycles_;
  const MicroInstr& mi = (*microProgram_)[microPc_];
  if (needsExternalBus(mi, mar_)) {
    if (!host_.acquireExternalBus(id_)) {
      ++stalls_;
      if (sink_ != nullptr) sink_->onBusStall(id_, obsNow());
      return;  // arbitration lost: retry next cycle
    }
    if (extPhase_ == 0) {
      extPhase_ = 1;  // external wait state
      if (sink_ != nullptr) sink_->onBusWait(id_, obsNow());
      return;
    }
    extPhase_ = 0;
  }
  execMicroOp(mi);
  ++microPc_;
  if (microPc_ >= microProgram_->size()) {
    ++instructions_;
    if (sink_ != nullptr) sink_->onInstrRetire(id_, obsNow());
    if (busy_) beginInstruction();
  }
}

void Tep::applyFlags(uint32_t result, int width) {
  flagZ_ = truncBits(result, width) == 0;
  flagN_ = width < 32 ? ((result >> (width - 1)) & 1u) != 0 : (result >> 31) != 0;
}

void Tep::aluExec(AluSub sub, bool last) {
  if (!last) return;  // earlier chunks: cost only; result applied atomically
  const int w = current_.width;
  const uint32_t mask = maskBits(w);
  const uint32_t a = acc_ & mask;
  const uint32_t b = op_ & mask;
  uint64_t wide = 0;
  switch (sub) {
    case AluSub::Add:
      wide = static_cast<uint64_t>(a) + b;
      flagC_ = (wide >> w) != 0;
      break;
    case AluSub::Sub:
      wide = static_cast<uint64_t>(a) - b;
      flagC_ = a < b;  // borrow
      break;
    case AluSub::And: wide = a & b; break;
    case AluSub::Or: wide = a | b; break;
    case AluSub::Xor: wide = a ^ b; break;
    case AluSub::Not: wide = ~a; break;
    case AluSub::Neg: wide = 0 - static_cast<uint64_t>(a); break;
    case AluSub::Inc: wide = static_cast<uint64_t>(a) + 1; break;
  }
  acc_ = truncBits(static_cast<uint32_t>(wide), w);
  applyFlags(acc_, w);
}

void Tep::execMicroOp(const MicroInstr& mi) {
  const int w = current_.width;
  const uint32_t mask = maskBits(w);
  const int totalBytes = (w + 7) / 8;
  const int bpw = config_.bytesPerWord();

  switch (mi.op) {
    case MicroOp::IFetch:
    case MicroOp::IFetchOp:
      // The operand word doubles as the memory address: latch it into MAR
      // so direct-address loads/stores skip a MAR-load state.
      mar_ = current_.operand;
      break;
    case MicroOp::Decode:
    case MicroOp::CostOnly:
    case MicroOp::MulStep:
    case MicroOp::DivStep:
    case MicroOp::ShiftStep:
      break;  // datapath setup states: cost only

    case MicroOp::MarLoad:
      mar_ = current_.operand;
      break;
    case MicroOp::MarFromOp:
      mar_ = static_cast<int32_t>(op_ & 0xFFFF);
      break;
    case MicroOp::MarFromOpDisp:
      mar_ = static_cast<int32_t>((op_ & 0xFFFF) + static_cast<uint32_t>(current_.operand));
      break;
    case MicroOp::MemRead: {
      const int chunk = mi.arg;
      const int base = chunk * bpw;
      for (int i = 0; i < bpw && base + i < totalBytes; ++i) {
        const uint32_t byte = host_.readByte(mar_ + base + i);
        mdr_ &= ~(0xFFu << (8 * (base + i)));
        mdr_ |= byte << (8 * (base + i));
      }
      break;
    }
    case MicroOp::MemWrite: {
      const int chunk = mi.arg;
      const int base = chunk * bpw;
      for (int i = 0; i < bpw && base + i < totalBytes; ++i)
        host_.writeByte(mar_ + base + i,
                        static_cast<uint8_t>((mdr_ >> (8 * (base + i))) & 0xFF));
      break;
    }
    case MicroOp::MdrToAcc:
      acc_ = mdr_ & mask;
      break;
    case MicroOp::MdrToOp:
      op_ = mdr_ & mask;
      break;
    case MicroOp::AccToMdr:
      mdr_ = acc_ & mask;
      break;
    case MicroOp::AccToOp:
      op_ = acc_ & mask;
      break;
    case MicroOp::AccLoadImm:
      if (mi.arg == config_.chunksFor(w) - 1)
        acc_ = static_cast<uint32_t>(current_.operand) & mask;
      break;
    case MicroOp::OpLoadImm:
      if (mi.arg == config_.chunksFor(w) - 1)
        op_ = static_cast<uint32_t>(current_.operand) & mask;
      break;
    case MicroOp::RegToAcc:
      acc_ = host_.readReg(current_.operand) & mask;
      break;
    case MicroOp::RegToOp:
      op_ = host_.readReg(current_.operand) & mask;
      break;
    case MicroOp::AccToReg:
      host_.writeReg(current_.operand, acc_ & mask);
      break;

    case MicroOp::AluChunk: {
      AluSub sub;
      int chunk = 0;
      bool last = false;
      unpackAlu(mi.arg, sub, chunk, last);
      aluExec(sub, last);
      break;
    }
    case MicroOp::MulExec:
      acc_ = truncBits(acc_ * op_, w);
      applyFlags(acc_, w);
      break;
    case MicroOp::DivExec:
    case MicroOp::ModExec: {
      const bool isDiv = mi.op == MicroOp::DivExec;
      const bool isSigned = current_.op == Opcode::Div || current_.op == Opcode::Mod;
      if ((op_ & mask) == 0)
        fail("TEP%d: division by zero at PC %d", id_, pc_ - 1);
      uint32_t result = 0;
      if (isSigned) {
        const int32_t a = signExtend(acc_ & mask, w);
        const int32_t b = signExtend(op_ & mask, w);
        result = static_cast<uint32_t>(isDiv ? a / b : a % b);
      } else {
        const uint32_t a = acc_ & mask;
        const uint32_t b = op_ & mask;
        result = isDiv ? a / b : a % b;
      }
      acc_ = truncBits(result, w);
      applyFlags(acc_, w);
      break;
    }
    case MicroOp::CmpExec: {
      const uint32_t a = acc_ & mask;
      const uint32_t b = op_ & mask;
      flagZ_ = a == b;
      flagN_ = signExtend(a, w) < signExtend(b, w);  // signed less-than
      flagC_ = a < b;                                // unsigned less-than
      break;
    }
    case MicroOp::ShiftExec: {
      const int count = current_.operand & 31;
      if (current_.op == Opcode::Shl) {
        acc_ = truncBits(acc_ << count, w);
      } else if (current_.op == Opcode::Shr) {
        acc_ = truncBits((acc_ & mask) >> count, w);
      } else {  // Sar
        acc_ = truncBits(static_cast<uint32_t>(signExtend(acc_ & mask, w) >> count), w);
      }
      applyFlags(acc_, w);
      break;
    }
    case MicroOp::CustomExec: {
      const auto index = static_cast<size_t>(current_.operand);
      PSCP_ASSERT(index < config_.customInstructions.size());
      const hwlib::CustomInstr& ci = config_.customInstructions[index];
      const uint32_t cmask = maskBits(ci.width);
      uint32_t v = acc_ & cmask;
      for (const hwlib::CustomStep& step : ci.steps) {
        const uint32_t rhs = step.useConst ? static_cast<uint32_t>(step.konst) & cmask
                                           : op_ & cmask;
        switch (step.op) {
          case hwlib::CustomOp::Add: v = v + rhs; break;
          case hwlib::CustomOp::Sub: v = v - rhs; break;
          case hwlib::CustomOp::And: v = v & rhs; break;
          case hwlib::CustomOp::Or: v = v | rhs; break;
          case hwlib::CustomOp::Xor: v = v ^ rhs; break;
          case hwlib::CustomOp::Shl: v = v << (rhs & 31); break;
          case hwlib::CustomOp::Shr: v = (v & cmask) >> (rhs & 31); break;
          case hwlib::CustomOp::Sar:
            v = static_cast<uint32_t>(signExtend(v & cmask, ci.width) >>
                                      (rhs & 31));
            break;
          case hwlib::CustomOp::Neg: v = 0 - v; break;
          case hwlib::CustomOp::Not: v = ~v; break;
        }
        v &= cmask;
      }
      acc_ = v;
      applyFlags(acc_, ci.width);
      break;
    }

    case MicroOp::Jump:
      // Jump microinstructions are always the final state of their
      // microprogram, so plain fall-through ends the instruction.
      pc_ = current_.operand;
      break;
    case MicroOp::JumpZ:
      if (flagZ_) {
        pc_ = current_.operand;
      }
      break;
    case MicroOp::JumpNZ:
      if (!flagZ_) {
        pc_ = current_.operand;
      }
      break;
    case MicroOp::JumpN:
      if (flagN_) {
        pc_ = current_.operand;
      }
      break;
    case MicroOp::JumpC:
      if (flagC_) {
        pc_ = current_.operand;
      }
      break;
    case MicroOp::CallPush:
      if (callStack_.size() >= 32) fail("TEP%d: call stack overflow", id_);
      callStack_.push_back(pc_);
      pc_ = current_.operand;
      break;
    case MicroOp::RetPop:
      if (callStack_.empty()) fail("TEP%d: RET with empty call stack", id_);
      pc_ = callStack_.back();
      callStack_.pop_back();
      break;

    case MicroOp::PortRead:
      acc_ = host_.readPort(current_.operand);
      break;
    case MicroOp::PortWrite:
      host_.writePort(current_.operand, acc_ & mask);
      break;
    case MicroOp::EvSet:
      host_.raiseEvent(current_.operand);
      break;
    case MicroOp::CondSet:
      host_.setCondition(current_.operand, true);
      break;
    case MicroOp::CondClr:
      host_.setCondition(current_.operand, false);
      break;
    case MicroOp::CondTest: {
      const bool v = host_.testCondition(current_.operand);
      acc_ = v ? 1u : 0u;
      flagZ_ = !v;
      break;
    }
    case MicroOp::StateTest: {
      const bool v = host_.testState(current_.operand);
      acc_ = v ? 1u : 0u;
      flagZ_ = !v;
      break;
    }
    case MicroOp::Tret:
      busy_ = false;
      break;
  }
}

RunResult Tep::run(const std::string& routine, int64_t maxCycles) {
  PSCP_ASSERT(program_ != nullptr);
  const int64_t startCycles = cycles_;
  const int64_t startInstr = instructions_;
  startRoutine(program_->entryOf(routine));
  while (busy_ && cycles_ - startCycles < maxCycles) stepCycle();
  RunResult r;
  r.cycles = cycles_ - startCycles;
  r.instructions = instructions_ - startInstr;
  r.completed = !busy_;
  return r;
}

}  // namespace pscp::tep
