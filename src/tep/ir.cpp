#include "tep/ir.hpp"

#include <algorithm>
#include <optional>

#include "support/bits.hpp"
#include "support/diag.hpp"
#include "tep/microcode.hpp"

namespace pscp::tep::ir {

const char* irOpName(IrOp op) {
  switch (op) {
    case IrOp::kAddCycles: return "cycles+";
    case IrOp::kLoadImm: return "li";
    case IrOp::kCopy: return "mov";
    case IrOp::kMask: return "mask";
    case IrOp::kAddImm: return "addi";
    case IrOp::kAdd: return "add";
    case IrOp::kSub: return "sub";
    case IrOp::kAnd: return "and";
    case IrOp::kOr: return "or";
    case IrOp::kXor: return "xor";
    case IrOp::kNot: return "not";
    case IrOp::kNeg: return "neg";
    case IrOp::kMul: return "mul";
    case IrOp::kDivMod: return "divmod";
    case IrOp::kCmp: return "cmp";
    case IrOp::kShl: return "shl";
    case IrOp::kShr: return "shr";
    case IrOp::kSar: return "sar";
    case IrOp::kLoad: return "ld";
    case IrOp::kStore: return "st";
    case IrOp::kLoadAt: return "ld@";
    case IrOp::kStoreAt: return "st@";
    case IrOp::kRegGet: return "rget";
    case IrOp::kRegSet: return "rset";
    case IrOp::kPortRead: return "inp";
    case IrOp::kPortWrite: return "outp";
    case IrOp::kEvSet: return "evset";
    case IrOp::kCondSet: return "cset";
    case IrOp::kCondTest: return "ctst";
    case IrOp::kStateTest: return "stst";
    case IrOp::kCustom: return "custom";
    case IrOp::kJump: return "jmp";
    case IrOp::kJz: return "jz";
    case IrOp::kJnz: return "jnz";
    case IrOp::kJn: return "jn";
    case IrOp::kJc: return "jc";
    case IrOp::kCall: return "call";
    case IrOp::kRet: return "ret";
    case IrOp::kTret: return "tret";
    case IrOp::kRunOff: return "runoff";
    case IrOp::kSetZ: return "setz";
    case IrOp::kSetN: return "setn";
    case IrOp::kSetC: return "setc";
  }
  return "?";
}

namespace {
const char* vregName(int v) {
  switch (v) {
    case kVregAcc: return "acc";
    case kVregOp: return "op";
    case kVregTmp: return "tmp";
    default: return "-";
  }
}
}  // namespace

std::string IrInst::str() const {
  std::string s = strfmt("%-8s", irOpName(op));
  if (dst >= 0) s += strfmt(" %s", vregName(dst));
  if (src1 >= 0) s += strfmt(" %s", vregName(src1));
  if (src2 >= 0) s += strfmt(" %s", vregName(src2));
  s += strfmt(" imm=%d", imm);
  if (imm2 != 0) s += strfmt(" imm2=%d", imm2);
  s += strfmt(" w=%d", width);
  if (setZ || setN || setC)
    s += strfmt(" [%s%s%s]", setZ ? "Z" : "", setN ? "N" : "", setC ? "C" : "");
  return s;
}

int IrRoutine::anchorOf(int target) const {
  for (size_t i = 0; i < code.size(); ++i)
    if (code[i].op == IrOp::kAddCycles && code[i].isa == target)
      return static_cast<int>(i);
  return -1;
}

std::string IrRoutine::listing() const {
  std::string out;
  for (size_t i = 0; i < code.size(); ++i) {
    const IrInst& in = code[i];
    if (in.op == IrOp::kAddCycles) out += strfmt("isa %d:\n", in.isa);
    out += strfmt("  %3zu  %s\n", i, in.str().c_str());
  }
  return out;
}

namespace {

bool fallsThrough(Opcode op) {
  // kCall "falls through" in the sense that its continuation (the next
  // instruction) is reachable via Ret.
  switch (op) {
    case Opcode::Jmp:
    case Opcode::Ret:
    case Opcode::Tret:
      return false;
    default:
      return true;
  }
}

bool isBranch(Opcode op) {
  switch (op) {
    case Opcode::Jmp:
    case Opcode::Jz:
    case Opcode::Jnz:
    case Opcode::Jn:
    case Opcode::Jc:
    case Opcode::Call:
      return true;
    default:
      return false;
  }
}

struct Lowerer {
  const AsmProgram& program;
  const hwlib::ArchConfig& config;
  const LowerLimits& limits;
  IrRoutine out;
  std::string reason;

  bool lower(int entry);
  void lowerInstr(int i, const Instr& in);
  void push(IrInst in) { out.code.push_back(in); }
};

bool Lowerer::lower(int entry) {
  const int size = static_cast<int>(program.code.size());
  if (entry < 0 || entry >= size) {
    reason = "entry out of range";
    return false;
  }
  // Reachability over the ISA instruction stream.
  std::vector<char> reach(static_cast<size_t>(size), 0);
  std::vector<int> work{entry};
  reach[static_cast<size_t>(entry)] = 1;
  auto visit = [&](int t) {
    if (t >= 0 && t < size && !reach[static_cast<size_t>(t)]) {
      reach[static_cast<size_t>(t)] = 1;
      work.push_back(t);
    }
  };
  while (!work.empty()) {
    const int i = work.back();
    work.pop_back();
    const Instr& in = program.code[static_cast<size_t>(i)];
    if (isBranch(in.op)) visit(in.operand);
    if (fallsThrough(in.op)) visit(i + 1);
  }

  out.entryIsa = entry;
  for (int i = 0; i < size; ++i) {
    if (!reach[static_cast<size_t>(i)]) continue;
    const Instr& in = program.code[static_cast<size_t>(i)];
    if (in.width < 1 || in.width > kMaxWidth) {
      reason = strfmt("isa %d: unsupported width %d", i, in.width);
      return false;
    }
    ++out.stats.isaInstructions;
    lowerInstr(i, in);
    if (!reason.empty()) return false;
    // Falling off the end of the program is a runtime error, raised by the
    // interpreter's beginInstruction inside the same cycle.
    if (fallsThrough(in.op) && i + 1 >= size) {
      IrInst ro;
      ro.op = IrOp::kRunOff;
      ro.imm = i + 1;
      ro.isa = i;
      push(ro);
    }
    if (static_cast<int>(out.code.size()) > limits.maxIrOps) {
      reason = "routine exceeds IR size limit";
      return false;
    }
  }
  out.stats.loweredOps = static_cast<int>(out.code.size());
  return true;
}

void Lowerer::lowerInstr(int i, const Instr& in) {
  const int w = in.width;
  const uint32_t mask = maskBits(w);
  const int bytes = (w + 7) / 8;
  const int chunks = config.chunksFor(w);
  const int32_t memPack = bytes | (chunks << 8);

  // Static microprogram cost, charged up front (the anchor op).
  IrInst cost;
  cost.op = IrOp::kAddCycles;
  cost.imm = cyclesFor(in, config);
  cost.isa = i;
  push(cost);

  auto mk = [&](IrOp op) {
    IrInst n;
    n.op = op;
    n.width = static_cast<uint8_t>(w);
    n.isa = i;
    return n;
  };
  auto alu = [&](IrOp op, bool withOp, bool carry) {
    IrInst n = mk(op);
    n.dst = kVregAcc;
    n.src1 = kVregAcc;
    n.src2 = withOp ? kVregOp : -1;
    n.setZ = n.setN = true;
    n.setC = carry;
    push(n);
  };
  auto memDirect = [&](IrOp op, int reg) {
    IrInst n = mk(op);
    n.imm = in.operand;
    n.imm2 = memPack;
    if (op == IrOp::kLoad)
      n.dst = static_cast<int8_t>(reg);
    else
      n.src1 = static_cast<int8_t>(reg);
    push(n);
  };
  auto addrFromOp = [&](int32_t disp) {
    // mar = (OP & 0xFFFF) + disp, raw 32-bit wrap like the interpreter.
    IrInst m = mk(IrOp::kMask);
    m.dst = kVregTmp;
    m.src1 = kVregOp;
    m.imm = 0xFFFF;
    push(m);
    if (disp != 0) {
      IrInst a = mk(IrOp::kAddImm);
      a.dst = kVregTmp;
      a.src1 = kVregTmp;
      a.imm = disp;
      push(a);
    }
  };
  auto memIndirect = [&](bool isLoad, int32_t disp) {
    addrFromOp(disp);
    IrInst n = mk(isLoad ? IrOp::kLoadAt : IrOp::kStoreAt);
    n.src1 = kVregTmp;
    n.imm2 = memPack;
    if (isLoad)
      n.dst = kVregAcc;
    else
      n.src2 = kVregAcc;
    push(n);
  };
  auto branch = [&](IrOp op) {
    IrInst n = mk(op);
    n.imm = in.operand;
    push(n);
  };

  switch (in.op) {
    case Opcode::Nop:
      break;
    case Opcode::LdaImm:
    case Opcode::LdoImm: {
      IrInst n = mk(IrOp::kLoadImm);
      n.dst = in.op == Opcode::LdaImm ? kVregAcc : kVregOp;
      n.imm = static_cast<int32_t>(static_cast<uint32_t>(in.operand) & mask);
      push(n);
      break;
    }
    case Opcode::LdaMem: memDirect(IrOp::kLoad, kVregAcc); break;
    case Opcode::LdoMem: memDirect(IrOp::kLoad, kVregOp); break;
    case Opcode::StaMem: memDirect(IrOp::kStore, kVregAcc); break;
    case Opcode::LdaInd: memIndirect(true, 0); break;
    case Opcode::StaInd: memIndirect(false, 0); break;
    case Opcode::LdaIdx: memIndirect(true, in.operand); break;
    case Opcode::StaIdx: memIndirect(false, in.operand); break;
    case Opcode::LdaReg:
    case Opcode::LdoReg: {
      IrInst n = mk(IrOp::kRegGet);
      n.dst = in.op == Opcode::LdaReg ? kVregAcc : kVregOp;
      n.imm = in.operand;
      push(n);
      break;
    }
    case Opcode::StaReg: {
      IrInst n = mk(IrOp::kRegSet);
      n.src1 = kVregAcc;
      n.imm = in.operand;
      push(n);
      break;
    }
    case Opcode::Tao: {
      // AccToOp: OP = ACC & mask, no flags.
      IrInst n = mk(IrOp::kMask);
      n.dst = kVregOp;
      n.src1 = kVregAcc;
      n.imm = static_cast<int32_t>(mask);
      push(n);
      break;
    }
    case Opcode::Add: alu(IrOp::kAdd, true, true); break;
    case Opcode::Sub: alu(IrOp::kSub, true, true); break;
    case Opcode::And: alu(IrOp::kAnd, true, false); break;
    case Opcode::Or: alu(IrOp::kOr, true, false); break;
    case Opcode::Xor: alu(IrOp::kXor, true, false); break;
    case Opcode::Not: alu(IrOp::kNot, false, false); break;
    // Without a two's-complement unit the interpreter expands Neg into
    // Not+Inc chunks; the final value and Z/N are identical to the
    // one-state Neg (flags come from the final increment), so one IR op
    // covers both configurations.
    case Opcode::Neg: alu(IrOp::kNeg, false, false); break;
    case Opcode::Mul: alu(IrOp::kMul, true, false); break;
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::Divu:
    case Opcode::Modu: {
      IrInst n = mk(IrOp::kDivMod);
      n.dst = kVregAcc;
      n.src1 = kVregAcc;
      n.src2 = kVregOp;
      n.signedOp = in.op == Opcode::Div || in.op == Opcode::Mod;
      n.isDiv = in.op == Opcode::Div || in.op == Opcode::Divu;
      n.setZ = n.setN = true;
      n.imm = i;  // ISA pc for the division-by-zero diagnostic
      push(n);
      break;
    }
    case Opcode::Cmp: {
      IrInst n = mk(IrOp::kCmp);
      n.src1 = kVregAcc;
      n.src2 = kVregOp;
      n.setZ = n.setN = n.setC = true;
      push(n);
      break;
    }
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Sar: {
      IrInst n = mk(in.op == Opcode::Shl   ? IrOp::kShl
                    : in.op == Opcode::Shr ? IrOp::kShr
                                           : IrOp::kSar);
      n.dst = kVregAcc;
      n.src1 = kVregAcc;
      n.imm = in.operand;
      n.setZ = n.setN = true;
      push(n);
      break;
    }
    case Opcode::Jmp: branch(IrOp::kJump); break;
    case Opcode::Jz: branch(IrOp::kJz); break;
    case Opcode::Jnz: branch(IrOp::kJnz); break;
    case Opcode::Jn: branch(IrOp::kJn); break;
    case Opcode::Jc: branch(IrOp::kJc); break;
    case Opcode::Call: {
      branch(IrOp::kCall);
      out.hasCalls = true;
      break;
    }
    case Opcode::Ret: push(mk(IrOp::kRet)); break;
    case Opcode::Inp: {
      IrInst n = mk(IrOp::kPortRead);
      n.dst = kVregAcc;
      n.imm = in.operand;
      push(n);
      break;
    }
    case Opcode::Outp: {
      IrInst n = mk(IrOp::kPortWrite);
      n.src1 = kVregAcc;
      n.imm = in.operand;
      // The PortWrite micro-op is the last state of its microprogram; the
      // instruction's full cost is charged before this op runs, so the
      // interpreter-visible machine time is one cycle earlier.
      n.imm2 = -1;
      push(n);
      break;
    }
    case Opcode::EvSet: {
      IrInst n = mk(IrOp::kEvSet);
      n.imm = in.operand;
      push(n);
      break;
    }
    case Opcode::CSet:
    case Opcode::CClr: {
      IrInst n = mk(IrOp::kCondSet);
      n.imm = in.operand;
      n.imm2 = in.op == Opcode::CSet ? 1 : 0;
      push(n);
      break;
    }
    case Opcode::CTst:
    case Opcode::STst: {
      IrInst n = mk(in.op == Opcode::CTst ? IrOp::kCondTest : IrOp::kStateTest);
      n.dst = kVregAcc;
      n.imm = in.operand;
      n.setZ = true;
      push(n);
      break;
    }
    case Opcode::Tret: push(mk(IrOp::kTret)); break;
    case Opcode::Custom: {
      if (in.operand < 0 ||
          static_cast<size_t>(in.operand) >= config.customInstructions.size()) {
        reason = strfmt("isa %d: custom index %d out of range", i, in.operand);
        return;
      }
      IrInst n = mk(IrOp::kCustom);
      n.dst = kVregAcc;
      n.src1 = kVregAcc;
      n.src2 = kVregOp;
      n.imm = in.operand;
      n.imm2 = config.customInstructions[static_cast<size_t>(in.operand)].width;
      n.setZ = n.setN = true;
      push(n);
      break;
    }
  }
}

// ------------------------------------------------------- constant folding

struct FoldVal {
  bool known = false;
  uint32_t value = 0;
};

struct FoldState {
  FoldVal vreg[kVregCount];
  FoldVal flagZ, flagN, flagC;
  void clear() { *this = FoldState{}; }
};

/// Exact interpreter ALU semantics (machine.cpp aluExec / exec paths).
struct AluResult {
  uint32_t value = 0;
  bool z = false, n = false, c = false;
  bool carryValid = false;
};

std::optional<AluResult> evalAlu(const IrInst& in, uint32_t s1, uint32_t s2) {
  const int w = in.width;
  const uint32_t m = maskBits(w);
  const uint32_t a = s1 & m;
  const uint32_t b = s2 & m;
  AluResult r;
  uint64_t wide = 0;
  switch (in.op) {
    case IrOp::kAdd:
      wide = static_cast<uint64_t>(a) + b;
      r.c = (wide >> w) != 0;
      r.carryValid = true;
      break;
    case IrOp::kSub:
      wide = static_cast<uint64_t>(a) - b;
      r.c = a < b;
      r.carryValid = true;
      break;
    case IrOp::kAnd: wide = a & b; break;
    case IrOp::kOr: wide = a | b; break;
    case IrOp::kXor: wide = a ^ b; break;
    case IrOp::kNot: wide = ~a; break;
    case IrOp::kNeg: wide = 0 - static_cast<uint64_t>(a); break;
    case IrOp::kMul: wide = s1 * s2; break;  // raw 32-bit product, truncated
    case IrOp::kShl: wide = s1 << (in.imm & 31); break;  // raw ACC
    case IrOp::kShr: wide = a >> (in.imm & 31); break;
    case IrOp::kSar:
      wide = static_cast<uint32_t>(signExtend(a, w) >> (in.imm & 31));
      break;
    default:
      return std::nullopt;
  }
  r.value = truncBits(static_cast<uint32_t>(wide), w);
  r.z = r.value == 0;
  r.n = w < 32 ? ((r.value >> (w - 1)) & 1u) != 0 : (r.value >> 31) != 0;
  return r;
}

void constFold(IrRoutine& r) {
  // ISA indices that are branch/call targets: the lattice resets there
  // (control can arrive from elsewhere).
  std::vector<int> targets{r.entryIsa};
  for (const IrInst& in : r.code) {
    switch (in.op) {
      case IrOp::kJump:
      case IrOp::kJz:
      case IrOp::kJnz:
      case IrOp::kJn:
      case IrOp::kJc:
      case IrOp::kCall:
        targets.push_back(in.imm);
        break;
      default:
        break;
    }
  }
  std::sort(targets.begin(), targets.end());

  std::vector<IrInst> out;
  out.reserve(r.code.size());
  FoldState st;
  int folded = 0;

  auto emitFlag = [&](IrOp op, bool value, const IrInst& like) {
    IrInst n;
    n.op = op;
    n.imm = value ? 1 : 0;
    n.isa = like.isa;
    out.push_back(n);
  };

  for (const IrInst& in : r.code) {
    if (in.op == IrOp::kAddCycles &&
        std::binary_search(targets.begin(), targets.end(), in.isa))
      st.clear();

    auto s1 = in.src1 >= 0 ? st.vreg[in.src1] : FoldVal{};
    auto s2 = in.src2 >= 0 ? st.vreg[in.src2] : FoldVal{};
    auto setDst = [&](bool known, uint32_t v) {
      if (in.dst >= 0) st.vreg[in.dst] = {known, v};
    };
    auto setFlags = [&](bool known, bool z, bool n, bool c, bool cValid) {
      if (in.setZ) st.flagZ = {known, z};
      if (in.setN) st.flagN = {known, n};
      if (in.setC) st.flagC = {known && cValid, c};
    };

    switch (in.op) {
      case IrOp::kLoadImm:
        setDst(true, static_cast<uint32_t>(in.imm));
        out.push_back(in);
        continue;
      case IrOp::kCopy:
        setDst(s1.known, s1.value);
        if (s1.known) {
          IrInst n = in;
          n.op = IrOp::kLoadImm;
          n.src1 = -1;
          n.imm = static_cast<int32_t>(s1.value);
          out.push_back(n);
          ++folded;
        } else {
          out.push_back(in);
        }
        continue;
      case IrOp::kMask:
      case IrOp::kAddImm: {
        const uint32_t v = in.op == IrOp::kMask
                               ? (s1.value & static_cast<uint32_t>(in.imm))
                               : (s1.value + static_cast<uint32_t>(in.imm));
        setDst(s1.known, v);
        if (s1.known) {
          IrInst n = in;
          n.op = IrOp::kLoadImm;
          n.src1 = -1;
          n.imm = static_cast<int32_t>(v);
          out.push_back(n);
          ++folded;
        } else {
          out.push_back(in);
        }
        continue;
      }
      case IrOp::kAdd:
      case IrOp::kSub:
      case IrOp::kAnd:
      case IrOp::kOr:
      case IrOp::kXor:
      case IrOp::kNot:
      case IrOp::kNeg:
      case IrOp::kMul:
      case IrOp::kShl:
      case IrOp::kShr:
      case IrOp::kSar: {
        const bool binary = in.src2 >= 0;
        const bool knownIn = s1.known && (!binary || s2.known);
        if (knownIn) {
          if (auto res = evalAlu(in, s1.value, s2.value)) {
            setDst(true, res->value);
            setFlags(true, res->z, res->n, res->c, res->carryValid);
            IrInst n = in;
            n.op = IrOp::kLoadImm;
            n.src1 = n.src2 = -1;
            n.setZ = n.setN = n.setC = false;
            n.imm = static_cast<int32_t>(res->value);
            out.push_back(n);
            if (in.setZ) emitFlag(IrOp::kSetZ, res->z, in);
            if (in.setN) emitFlag(IrOp::kSetN, res->n, in);
            if (in.setC && res->carryValid) emitFlag(IrOp::kSetC, res->c, in);
            ++folded;
            continue;
          }
        }
        setDst(false, 0);
        setFlags(false, false, false, false, true);
        out.push_back(in);
        continue;
      }
      case IrOp::kCmp: {
        if (s1.known && s2.known) {
          const uint32_t m = maskBits(in.width);
          const uint32_t a = s1.value & m, b = s2.value & m;
          const bool z = a == b;
          const bool n = signExtend(a, in.width) < signExtend(b, in.width);
          const bool c = a < b;
          st.flagZ = {true, z};
          st.flagN = {true, n};
          st.flagC = {true, c};
          emitFlag(IrOp::kSetZ, z, in);
          emitFlag(IrOp::kSetN, n, in);
          emitFlag(IrOp::kSetC, c, in);
          ++folded;
          continue;
        }
        setFlags(false, false, false, false, true);
        out.push_back(in);
        continue;
      }
      case IrOp::kSetZ: st.flagZ = {true, in.imm != 0}; out.push_back(in); continue;
      case IrOp::kSetN: st.flagN = {true, in.imm != 0}; out.push_back(in); continue;
      case IrOp::kSetC: st.flagC = {true, in.imm != 0}; out.push_back(in); continue;
      case IrOp::kJz:
      case IrOp::kJnz:
      case IrOp::kJn:
      case IrOp::kJc: {
        const FoldVal* f = (in.op == IrOp::kJz || in.op == IrOp::kJnz)
                               ? &st.flagZ
                               : in.op == IrOp::kJn ? &st.flagN : &st.flagC;
        const bool wantSet = in.op != IrOp::kJnz;
        if (f->known) {
          ++folded;
          if ((f->value != 0) == wantSet) {
            IrInst n = in;
            n.op = IrOp::kJump;
            out.push_back(n);
            st.clear();  // following code (if any) starts a new block
          }
          // else: never taken — drop the jump, fall through.
          continue;
        }
        out.push_back(in);
        continue;
      }
      case IrOp::kJump:
      case IrOp::kRet:
      case IrOp::kTret:
      case IrOp::kRunOff:
        out.push_back(in);
        st.clear();
        continue;
      case IrOp::kCall:
        out.push_back(in);
        st.clear();  // continuation resumes from an unknown callee state
        continue;
      case IrOp::kDivMod:
        // Not folded: division by zero must fail at runtime with the
        // interpreter's diagnostic, and signed overflow is left to the
        // same host arithmetic the interpreter uses.
        setDst(false, 0);
        setFlags(false, false, false, false, true);
        out.push_back(in);
        continue;
      case IrOp::kCondTest:
      case IrOp::kStateTest:
        setDst(false, 0);
        if (in.setZ) st.flagZ = {false, false};
        out.push_back(in);
        continue;
      case IrOp::kLoad:
      case IrOp::kLoadAt:
      case IrOp::kRegGet:
      case IrOp::kPortRead:
      case IrOp::kCustom:
        setDst(false, 0);
        setFlags(false, false, false, false, true);
        out.push_back(in);
        continue;
      case IrOp::kAddCycles:
      case IrOp::kStore:
      case IrOp::kStoreAt:
      case IrOp::kRegSet:
      case IrOp::kPortWrite:
      case IrOp::kEvSet:
      case IrOp::kCondSet:
        out.push_back(in);
        continue;
    }
  }
  r.code = std::move(out);
  r.stats.constFolded += folded;
}

// -------------------------------------------------------- jump threading

void threadJumps(IrRoutine& r, const LowerLimits& limits) {
  int threaded = 0;
  for (IrInst& in : r.code) {
    switch (in.op) {
      case IrOp::kJump:
      case IrOp::kJz:
      case IrOp::kJnz:
      case IrOp::kJn:
      case IrOp::kJc:
      case IrOp::kCall:
        break;
      default:
        continue;
    }
    int target = in.imm;
    int64_t extra = in.imm2;
    bool changed = false;
    std::vector<int> visited{target};
    for (int hop = 0; hop < limits.maxThreadingHops; ++hop) {
      const int anchor = r.anchorOf(target);
      if (anchor < 0 || anchor + 1 >= static_cast<int>(r.code.size())) break;
      const IrInst& a = r.code[static_cast<size_t>(anchor)];
      const IrInst& next = r.code[static_cast<size_t>(anchor) + 1];
      // Thread only through "charge cost, jump" instructions: the skipped
      // instruction's static cost moves onto the taken edge, so the cycle
      // account is unchanged.
      if (next.op != IrOp::kJump || next.isa != a.isa) break;
      const int dest = next.imm;
      if (std::find(visited.begin(), visited.end(), dest) != visited.end())
        break;  // jump cycle (infinite loop of jumps): leave as-is
      visited.push_back(dest);
      extra += a.imm + next.imm2;
      target = dest;
      changed = true;
    }
    if (changed && extra <= INT32_MAX) {
      in.imm = target;
      in.imm2 = static_cast<int32_t>(extra);
      ++threaded;
    }
  }
  r.stats.jumpsThreaded += threaded;
}

// ------------------------------------------------ dead-store elimination

constexpr uint8_t kLiveAcc = 1 << 0;
constexpr uint8_t kLiveOp = 1 << 1;
constexpr uint8_t kLiveTmp = 1 << 2;
constexpr uint8_t kLiveZ = 1 << 3;
constexpr uint8_t kLiveN = 1 << 4;
constexpr uint8_t kLiveC = 1 << 5;
constexpr uint8_t kLiveAll = 0x3F;

uint8_t vregBit(int v) {
  switch (v) {
    case kVregAcc: return kLiveAcc;
    case kVregOp: return kLiveOp;
    case kVregTmp: return kLiveTmp;
    default: return 0;
  }
}

bool isRemovable(IrOp op) {
  switch (op) {
    case IrOp::kLoadImm:
    case IrOp::kCopy:
    case IrOp::kMask:
    case IrOp::kAddImm:
    case IrOp::kAdd:
    case IrOp::kSub:
    case IrOp::kAnd:
    case IrOp::kOr:
    case IrOp::kXor:
    case IrOp::kNot:
    case IrOp::kNeg:
    case IrOp::kMul:
    case IrOp::kCmp:
    case IrOp::kShl:
    case IrOp::kShr:
    case IrOp::kSar:
    case IrOp::kSetZ:
    case IrOp::kSetN:
    case IrOp::kSetC:
      return true;  // pure value/flag producers — no host or cycle effects
    default:
      return false;
  }
}

void deadStoreElim(IrRoutine& r) {
  const int n = static_cast<int>(r.code.size());
  if (n == 0) return;

  // Successor offsets per op. -1 entries are exits.
  std::vector<std::vector<int>> succ(static_cast<size_t>(n));
  std::vector<uint8_t> exitLive(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const IrInst& in = r.code[static_cast<size_t>(i)];
    auto addTarget = [&](int isaTarget) {
      const int a = r.anchorOf(isaTarget);
      if (a >= 0)
        succ[static_cast<size_t>(i)].push_back(a);
      else
        exitLive[static_cast<size_t>(i)] |= 0;  // runoff stub: nothing live
    };
    switch (in.op) {
      case IrOp::kJump:
        addTarget(in.imm);
        break;
      case IrOp::kJz:
      case IrOp::kJnz:
      case IrOp::kJn:
      case IrOp::kJc:
      case IrOp::kCall:
        addTarget(in.imm);
        if (i + 1 < n) succ[static_cast<size_t>(i)].push_back(i + 1);
        break;
      case IrOp::kRet:
        // Returns to an unknown in-routine continuation: everything live.
        exitLive[static_cast<size_t>(i)] = kLiveAll;
        break;
      case IrOp::kTret:
        // ACC/OP and flags are synced back to the architectural TEP state.
        exitLive[static_cast<size_t>(i)] = kLiveAcc | kLiveOp | kLiveZ | kLiveN | kLiveC;
        break;
      case IrOp::kRunOff:
        break;  // fatal error: nothing observed afterwards
      default:
        if (i + 1 < n) succ[static_cast<size_t>(i)].push_back(i + 1);
        break;
    }
  }

  auto useDef = [](const IrInst& in, uint8_t& use, uint8_t& def) {
    use = def = 0;
    if (in.src1 >= 0) use |= vregBit(in.src1);
    if (in.src2 >= 0) use |= vregBit(in.src2);
    if (in.dst >= 0) def |= vregBit(in.dst);
    if (in.setZ) def |= kLiveZ;
    if (in.setN) def |= kLiveN;
    if (in.setC) def |= kLiveC;
    switch (in.op) {
      case IrOp::kJz: case IrOp::kJnz: use |= kLiveZ; break;
      case IrOp::kJn: use |= kLiveN; break;
      case IrOp::kJc: use |= kLiveC; break;
      default: break;
    }
  };

  // Backward liveness to fixpoint (routines are small; iterate simply).
  std::vector<uint8_t> liveOut(static_cast<size_t>(n), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = n - 1; i >= 0; --i) {
      uint8_t lo = exitLive[static_cast<size_t>(i)];
      for (int s : succ[static_cast<size_t>(i)]) {
        const IrInst& sin = r.code[static_cast<size_t>(s)];
        uint8_t use = 0, def = 0;
        useDef(sin, use, def);
        lo |= static_cast<uint8_t>((liveOut[static_cast<size_t>(s)] & ~def) | use);
      }
      if (lo != liveOut[static_cast<size_t>(i)]) {
        liveOut[static_cast<size_t>(i)] = lo;
        changed = true;
      }
    }
  }

  int removed = 0;
  std::vector<IrInst> out;
  out.reserve(r.code.size());
  for (int i = 0; i < n; ++i) {
    IrInst in = r.code[static_cast<size_t>(i)];
    const uint8_t lo = liveOut[static_cast<size_t>(i)];
    if (isRemovable(in.op)) {
      const bool dstDead = in.dst < 0 || (lo & vregBit(in.dst)) == 0;
      const bool zDead = !in.setZ || (lo & kLiveZ) == 0;
      const bool nDead = !in.setN || (lo & kLiveN) == 0;
      const bool cDead = !in.setC || (lo & kLiveC) == 0;
      const bool isFlagStore =
          in.op == IrOp::kSetZ || in.op == IrOp::kSetN || in.op == IrOp::kSetC;
      if (isFlagStore) {
        const uint8_t bit = in.op == IrOp::kSetZ   ? kLiveZ
                            : in.op == IrOp::kSetN ? kLiveN
                                                   : kLiveC;
        if ((lo & bit) == 0) {
          ++removed;
          continue;
        }
      } else if (dstDead && zDead && nDead && cDead) {
        ++removed;
        continue;
      } else {
        // Keep the op but drop dead flag updates (cheaper native code).
        if (in.setZ && (lo & kLiveZ) == 0) { in.setZ = false; ++removed; }
        if (in.setN && (lo & kLiveN) == 0) { in.setN = false; ++removed; }
        if (in.setC && (lo & kLiveC) == 0) { in.setC = false; ++removed; }
      }
    }
    out.push_back(in);
  }
  r.code = std::move(out);
  r.stats.deadRemoved += removed;
}

}  // namespace

LowerResult lowerRoutine(const AsmProgram& program, int entry,
                         const hwlib::ArchConfig& config,
                         const LowerLimits& limits) {
  LowerResult res;
  Lowerer l{program, config, limits, {}, {}};
  if (!l.lower(entry)) {
    res.reason = l.reason.empty() ? "lowering failed" : l.reason;
    return res;
  }
  res.routine = std::move(l.out);
  constFold(res.routine);
  threadJumps(res.routine, limits);
  deadStoreElim(res.routine);
  res.routine.stats.finalOps = static_cast<int>(res.routine.code.size());
  res.ok = true;
  return res;
}

}  // namespace pscp::tep::ir
