// Native-tier runtime contract: the JitContext block shared between
// emitted x86-64 code and the embedder, and the extern "C" helper bridge
// the emitted code calls for everything that touches the host (memory,
// ports, register bank, CR) or can fail.
//
// Error discipline: emitted code has no unwind tables, so C++ exceptions
// must never cross a JIT frame. Every helper catches pscp::Error, stores
// the exact message in JitEnv::error and returns nonzero; the emitted
// code checks the status and exits through its error epilogue, after
// which the embedder rethrows the stored message. Interpreter and native
// tier therefore fail with byte-identical diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "hwlib/arch_config.hpp"
#include "tep/machine.hpp"

namespace pscp::tep::jit {

/// Everything the helpers need from C++ land. Referenced (not owned) by
/// JitContext::env; never read by emitted code directly.
struct JitEnv {
  TepHost* host = nullptr;
  const hwlib::ArchConfig* config = nullptr;
  int tepId = 0;
  size_t programSize = 0;
  int64_t budgetLimit = 0;  ///< configuration-cycle guard (machine cycles)
  std::string error;        ///< helper-captured diagnostic
};

/// The block emitted code addresses with fixed offsets (asserted below).
/// Seeded by the embedder before a routine runs; read back afterwards.
struct JitContext {
  uint32_t acc = 0;          // +0
  uint32_t op = 0;           // +4
  uint8_t flagZ = 0;         // +8
  uint8_t flagN = 0;         // +9
  uint8_t flagC = 0;         // +10
  uint8_t pad0 = 0;          // +11
  uint32_t hvalue = 0;       // +12  helper value-return slot
  int64_t cycles = 0;        // +16  machine cycles consumed (running total)
  int64_t cycleBudget = 0;   // +24  error when a backward edge exceeds this
  int64_t timeBase = 0;      // +32  machine time of cycle 0
  int64_t* machineTime = nullptr;  // +40  embedder clock to update on port writes
  JitEnv* env = nullptr;     // +48
  int32_t callDepth = 0;     // +56
  int32_t pad1 = 0;          // +60
  uint64_t callStack[32] = {};  // +64  native return addresses
};

inline constexpr int32_t kCtxAcc = 0;
inline constexpr int32_t kCtxOp = 4;
inline constexpr int32_t kCtxFlagZ = 8;
inline constexpr int32_t kCtxFlagN = 9;
inline constexpr int32_t kCtxFlagC = 10;
inline constexpr int32_t kCtxHvalue = 12;
inline constexpr int32_t kCtxCycles = 16;
inline constexpr int32_t kCtxBudget = 24;
inline constexpr int32_t kCtxCallDepth = 56;
inline constexpr int32_t kCtxCallStack = 64;

static_assert(offsetof(JitContext, acc) == kCtxAcc);
static_assert(offsetof(JitContext, op) == kCtxOp);
static_assert(offsetof(JitContext, flagZ) == kCtxFlagZ);
static_assert(offsetof(JitContext, flagN) == kCtxFlagN);
static_assert(offsetof(JitContext, flagC) == kCtxFlagC);
static_assert(offsetof(JitContext, hvalue) == kCtxHvalue);
static_assert(offsetof(JitContext, cycles) == kCtxCycles);
static_assert(offsetof(JitContext, cycleBudget) == kCtxBudget);
static_assert(offsetof(JitContext, callDepth) == kCtxCallDepth);
static_assert(offsetof(JitContext, callStack) == kCtxCallStack);

/// Signature of an emitted routine: run to TRET or error. Returns 0 on
/// TRET, nonzero after an error epilogue (JitEnv::error holds the text).
using CompiledFn = int32_t (*)(JitContext*);

// --------------------------------------------------------------- helpers
//
// SysV x86-64: ctx in rdi, scalar args in esi/edx/ecx/r8d. Status in eax
// (0 ok); value results land in ctx->hvalue. `packed` for memory ops is
// totalBytes | chunks<<8 — chunks wait cycles are charged onto
// ctx->cycles when the base address is external, exactly the
// interpreter's per-chunk wait states.

extern "C" {
int32_t pscpJitLoad(JitContext* ctx, int32_t addr, int32_t packed) noexcept;
int32_t pscpJitStore(JitContext* ctx, int32_t addr, uint32_t value,
                     int32_t packed) noexcept;
int32_t pscpJitRegGet(JitContext* ctx, int32_t index) noexcept;
int32_t pscpJitRegSet(JitContext* ctx, int32_t index, uint32_t value) noexcept;
int32_t pscpJitPortRead(JitContext* ctx, int32_t port) noexcept;
int32_t pscpJitPortWrite(JitContext* ctx, int32_t port, uint32_t value,
                         int32_t timeSkew) noexcept;
int32_t pscpJitEvSet(JitContext* ctx, int32_t index) noexcept;
int32_t pscpJitCondSet(JitContext* ctx, int32_t index, int32_t value) noexcept;
int32_t pscpJitCondTest(JitContext* ctx, int32_t index) noexcept;
int32_t pscpJitStateTest(JitContext* ctx, int32_t index) noexcept;
/// packed = width | signed<<8 | isDiv<<9; pc = ISA index for diagnostics.
int32_t pscpJitDivMod(JitContext* ctx, uint32_t a, uint32_t b, int32_t packed,
                      int32_t pc) noexcept;
int32_t pscpJitCustom(JitContext* ctx, int32_t index, uint32_t a,
                      uint32_t b) noexcept;
// Error formatters (always return nonzero).
int32_t pscpJitErrRunOff(JitContext* ctx, int32_t pc) noexcept;
int32_t pscpJitErrStackOver(JitContext* ctx) noexcept;
int32_t pscpJitErrStackUnder(JitContext* ctx) noexcept;
int32_t pscpJitErrBudget(JitContext* ctx) noexcept;
}

}  // namespace pscp::tep::jit
