#include "tep/jit/codebuf.hpp"

#include <cstring>

#if PSCP_JIT_BACKEND
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace pscp::tep::jit {

CodeBuf::~CodeBuf() { release(); }

CodeBuf::CodeBuf(CodeBuf&& other) noexcept : base_(other.base_), size_(other.size_) {
  other.base_ = nullptr;
  other.size_ = 0;
}

CodeBuf& CodeBuf::operator=(CodeBuf&& other) noexcept {
  if (this != &other) {
    release();
    base_ = other.base_;
    size_ = other.size_;
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

#if PSCP_JIT_BACKEND

bool CodeBuf::install(const std::vector<uint8_t>& code, std::string* error) {
  release();
  if (code.empty()) {
    if (error != nullptr) *error = "empty code buffer";
    return false;
  }
  const long page = sysconf(_SC_PAGESIZE);
  const size_t pageSize = page > 0 ? static_cast<size_t>(page) : 4096;
  const size_t mapped = (code.size() + pageSize - 1) / pageSize * pageSize;
  void* mem = mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    if (error != nullptr) *error = "mmap of code pages failed";
    return false;
  }
  std::memcpy(mem, code.data(), code.size());
  // W^X: only after the write mapping is sealed does it become executable.
  if (mprotect(mem, mapped, PROT_READ | PROT_EXEC) != 0) {
    munmap(mem, mapped);
    if (error != nullptr) *error = "mprotect(RX) failed";
    return false;
  }
  base_ = mem;
  size_ = mapped;
  return true;
}

void CodeBuf::release() noexcept {
  if (base_ != nullptr) {
    munmap(base_, size_);
    base_ = nullptr;
    size_ = 0;
  }
}

#else  // !PSCP_JIT_BACKEND

bool CodeBuf::install(const std::vector<uint8_t>& code, std::string* error) {
  (void)code;
  if (error != nullptr) *error = "native tier unavailable on this build";
  return false;
}

void CodeBuf::release() noexcept {}

#endif

}  // namespace pscp::tep::jit
