#include "tep/jit/tier.hpp"

#include <chrono>
#include <cstdlib>

#include "support/diag.hpp"
#include "tep/jit/emit_x64.hpp"

namespace pscp::tep::jit {

const char* jitModeName(JitMode mode) {
  switch (mode) {
    case JitMode::kOff: return "off";
    case JitMode::kAuto: return "auto";
    case JitMode::kAlways: return "always";
  }
  return "?";
}

const char* routineStateName(RoutineState state) {
  switch (state) {
    case RoutineState::kNotCompiled: return "interp";
    case RoutineState::kCompiling: return "compiling";
    case RoutineState::kNative: return "native";
    case RoutineState::kRejected: return "rejected";
  }
  return "?";
}

bool parseJitMode(const std::string& text, JitMode* out) {
  if (text == "off") {
    *out = JitMode::kOff;
  } else if (text == "auto") {
    *out = JitMode::kAuto;
  } else if (text == "always") {
    *out = JitMode::kAlways;
  } else {
    return false;
  }
  return true;
}

JitMode jitModeFromEnv() {
  static const JitMode cached = [] {
    JitMode mode = JitMode::kAuto;
    if (const char* env = std::getenv("PSCP_JIT")) {
      if (!parseJitMode(env, &mode)) mode = JitMode::kAuto;
    }
    return mode;
  }();
  return cached;
}

TierCache::TierCache(const AsmProgram* program, const hwlib::ArchConfig* config,
                     int transitionCount)
    : program_(program), config_(config), count_(transitionCount) {
  PSCP_ASSERT(transitionCount >= 0);
  if (count_ > 0) slots_ = std::make_unique<Slot[]>(static_cast<size_t>(count_));
}

CompiledFn TierCache::dispatch(int transition, int entry, JitMode mode,
                               int64_t threshold) {
  if (mode == JitMode::kOff || !jitBackendAvailable()) return nullptr;
  if (transition < 0 || transition >= count_) return nullptr;
  Slot& slot = slots_[transition];
  const int64_t execs = slot.execs.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto state = static_cast<RoutineState>(slot.state.load(std::memory_order_acquire));
  switch (state) {
    case RoutineState::kNative:
      return slot.fn.load(std::memory_order_acquire);
    case RoutineState::kRejected:
    case RoutineState::kCompiling:
      return nullptr;
    case RoutineState::kNotCompiled:
      break;
  }
  if (mode == JitMode::kAuto && execs < threshold) return nullptr;
  if (compileSlot(slot, entry, nullptr)) {
    return slot.fn.load(std::memory_order_acquire);
  }
  return nullptr;
}

bool TierCache::precompile(int transition, int entry, std::string* reason) {
  if (!jitBackendAvailable()) {
    if (reason != nullptr) *reason = "native tier unavailable on this build";
    return false;
  }
  if (transition < 0 || transition >= count_) {
    if (reason != nullptr) *reason = "transition id out of range";
    return false;
  }
  Slot& slot = slots_[transition];
  if (static_cast<RoutineState>(slot.state.load(std::memory_order_acquire)) ==
      RoutineState::kNative) {
    return true;
  }
  return compileSlot(slot, entry, reason);
}

bool TierCache::compileSlot(Slot& slot, int entry, std::string* reason) {
  std::lock_guard<std::mutex> lock(compileMutex_);
  const auto state = static_cast<RoutineState>(slot.state.load(std::memory_order_acquire));
  if (state == RoutineState::kNative) return true;
  if (state == RoutineState::kRejected) {
    if (reason != nullptr) *reason = "previously rejected";
    return false;
  }
  slot.state.store(static_cast<uint8_t>(RoutineState::kCompiling),
                   std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  bool ok = false;
  std::string why;
  ir::LowerResult lowered = ir::lowerRoutine(*program_, entry, *config_);
  if (!lowered.ok) {
    why = "lowering: " + lowered.reason;
  } else {
    EmitResult emitted = emitX64(lowered.routine);
    if (!emitted.ok) {
      why = "emit: " + emitted.error;
    } else if (!slot.buf.install(emitted.code, &why)) {
      // why already set by install()
    } else {
      slot.fn.store(reinterpret_cast<CompiledFn>(const_cast<void*>(slot.buf.entry())),
                    std::memory_order_release);
      ok = true;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  compileMicros_.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count(),
      std::memory_order_relaxed);
  slot.state.store(static_cast<uint8_t>(ok ? RoutineState::kNative
                                           : RoutineState::kRejected),
                   std::memory_order_release);
  if (!ok && reason != nullptr) *reason = why;
  return ok;
}

void TierCache::recordNativeRun(int transition) {
  if (transition < 0 || transition >= count_) return;
  slots_[transition].nativeRuns.fetch_add(1, std::memory_order_relaxed);
}

void TierCache::recordInterpRun(int transition) {
  if (transition < 0 || transition >= count_) return;
  slots_[transition].interpRuns.fetch_add(1, std::memory_order_relaxed);
}

TierResidency TierCache::residency() const {
  TierResidency r;
  r.compileMicros = compileMicros_.load(std::memory_order_relaxed);
  for (int i = 0; i < count_; ++i) {
    const Slot& slot = slots_[i];
    r.nativeRuns += slot.nativeRuns.load(std::memory_order_relaxed);
    r.interpRuns += slot.interpRuns.load(std::memory_order_relaxed);
    switch (static_cast<RoutineState>(slot.state.load(std::memory_order_acquire))) {
      case RoutineState::kNative:
        ++r.nativeRoutines;
        break;
      case RoutineState::kRejected:
        ++r.rejectedRoutines;
        break;
      case RoutineState::kNotCompiled:
      case RoutineState::kCompiling:
        if (slot.execs.load(std::memory_order_relaxed) > 0) ++r.interpretedRoutines;
        break;
    }
  }
  return r;
}

RoutineState TierCache::stateOf(int transition) const {
  if (transition < 0 || transition >= count_) return RoutineState::kNotCompiled;
  return static_cast<RoutineState>(
      slots_[transition].state.load(std::memory_order_acquire));
}

int64_t TierCache::execCount(int transition) const {
  if (transition < 0 || transition >= count_) return 0;
  return slots_[transition].execs.load(std::memory_order_relaxed);
}

}  // namespace pscp::tep::jit
