// Executable code pages with W^X discipline.
//
// Pages are mapped read-write, the emitted bytes are copied in, then the
// mapping is flipped to read-execute with mprotect — it is never writable
// and executable at the same time. Each compiled routine owns its own
// mapping, so releasing a routine unmaps exactly its code. x86-64 has
// coherent instruction fetch after mprotect; no explicit icache flush is
// required (unlike ARM).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

// The native backend needs x86-64 code generation and POSIX mmap. Other
// hosts (and builds with the emitter compiled out via PSCP_JIT_DISABLE)
// fall back to the interpreter tier — see jitBackendAvailable().
#if defined(__x86_64__) && defined(__linux__) && !defined(PSCP_JIT_DISABLE)
#define PSCP_JIT_BACKEND 1
#else
#define PSCP_JIT_BACKEND 0
#endif

namespace pscp::tep::jit {

class CodeBuf {
 public:
  CodeBuf() = default;
  ~CodeBuf();
  CodeBuf(CodeBuf&& other) noexcept;
  CodeBuf& operator=(CodeBuf&& other) noexcept;
  CodeBuf(const CodeBuf&) = delete;
  CodeBuf& operator=(const CodeBuf&) = delete;

  /// Map fresh pages, copy `code` in, seal read-execute. Returns false
  /// (with `error` set) when the platform refuses executable memory —
  /// callers must then keep the routine interpreted.
  bool install(const std::vector<uint8_t>& code, std::string* error = nullptr);

  [[nodiscard]] const void* entry() const { return base_; }
  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool installed() const { return base_ != nullptr; }

 private:
  void release() noexcept;

  void* base_ = nullptr;
  size_t size_ = 0;  ///< page-rounded mapping size
};

}  // namespace pscp::tep::jit
