#include "tep/jit/runtime.hpp"

#include "support/bits.hpp"
#include "support/diag.hpp"
#include "tep/isa.hpp"

namespace pscp::tep::jit {

namespace {

JitEnv* envOf(JitContext* ctx) { return ctx->env; }

/// Run `body`, trapping pscp::Error (and any other exception) into
/// JitEnv::error so nothing unwinds through the emitted frame.
template <typename Fn>
int32_t guarded(JitContext* ctx, Fn&& body) noexcept {
  JitEnv* env = envOf(ctx);
  try {
    body(env);
    return 0;
  } catch (const Error& e) {
    env->error = e.what();
    return 1;
  } catch (const std::exception& e) {
    env->error = e.what();
    return 1;
  }
}

}  // namespace

extern "C" {

int32_t pscpJitLoad(JitContext* ctx, int32_t addr, int32_t packed) noexcept {
  return guarded(ctx, [&](JitEnv* env) {
    const int bytes = packed & 0xFF;
    const int chunks = (packed >> 8) & 0xFF;
    uint32_t v = 0;
    for (int i = 0; i < bytes; ++i)
      v |= static_cast<uint32_t>(env->host->readByte(addr + i)) << (8 * i);
    // External accesses pay one wait state per chunk micro-op; externality
    // is decided by the base address, like needsExternalBus(mar).
    if (isExternalAddress(addr)) ctx->cycles += chunks;
    ctx->hvalue = v;
  });
}

int32_t pscpJitStore(JitContext* ctx, int32_t addr, uint32_t value,
                     int32_t packed) noexcept {
  return guarded(ctx, [&](JitEnv* env) {
    const int bytes = packed & 0xFF;
    const int chunks = (packed >> 8) & 0xFF;
    for (int i = 0; i < bytes; ++i)
      env->host->writeByte(addr + i, static_cast<uint8_t>((value >> (8 * i)) & 0xFF));
    if (isExternalAddress(addr)) ctx->cycles += chunks;
  });
}

int32_t pscpJitRegGet(JitContext* ctx, int32_t index) noexcept {
  return guarded(ctx, [&](JitEnv* env) { ctx->hvalue = env->host->readReg(index); });
}

int32_t pscpJitRegSet(JitContext* ctx, int32_t index, uint32_t value) noexcept {
  return guarded(ctx, [&](JitEnv* env) { env->host->writeReg(index, value); });
}

int32_t pscpJitPortRead(JitContext* ctx, int32_t port) noexcept {
  return guarded(ctx, [&](JitEnv* env) { ctx->hvalue = env->host->readPort(port); });
}

int32_t pscpJitPortWrite(JitContext* ctx, int32_t port, uint32_t value,
                         int32_t timeSkew) noexcept {
  return guarded(ctx, [&](JitEnv* env) {
    // The embedder's machine clock must read exactly as it would at the
    // PortWrite micro-op (the instruction's full cost is already charged,
    // hence the negative skew) so logged port writes carry identical
    // timestamps in both tiers.
    if (ctx->machineTime != nullptr)
      *ctx->machineTime = ctx->timeBase + ctx->cycles + timeSkew;
    env->host->writePort(port, value);
  });
}

int32_t pscpJitEvSet(JitContext* ctx, int32_t index) noexcept {
  return guarded(ctx, [&](JitEnv* env) { env->host->raiseEvent(index); });
}

int32_t pscpJitCondSet(JitContext* ctx, int32_t index, int32_t value) noexcept {
  return guarded(ctx, [&](JitEnv* env) { env->host->setCondition(index, value != 0); });
}

int32_t pscpJitCondTest(JitContext* ctx, int32_t index) noexcept {
  return guarded(ctx,
                 [&](JitEnv* env) { ctx->hvalue = env->host->testCondition(index) ? 1u : 0u; });
}

int32_t pscpJitStateTest(JitContext* ctx, int32_t index) noexcept {
  return guarded(ctx,
                 [&](JitEnv* env) { ctx->hvalue = env->host->testState(index) ? 1u : 0u; });
}

int32_t pscpJitDivMod(JitContext* ctx, uint32_t a, uint32_t b, int32_t packed,
                      int32_t pc) noexcept {
  return guarded(ctx, [&](JitEnv* env) {
    const int w = packed & 0xFF;
    const bool isSigned = (packed & (1 << 8)) != 0;
    const bool isDiv = (packed & (1 << 9)) != 0;
    const uint32_t mask = maskBits(w);
    if ((b & mask) == 0)
      // The interpreter reports pc_ - 1, i.e. the ISA index of the
      // dividing instruction (pc was advanced at fetch).
      fail("TEP%d: division by zero at PC %d", env->tepId, pc);
    uint32_t result = 0;
    if (isSigned) {
      const int32_t sa = signExtend(a & mask, w);
      const int32_t sb = signExtend(b & mask, w);
      result = static_cast<uint32_t>(isDiv ? sa / sb : sa % sb);
    } else {
      const uint32_t ua = a & mask;
      const uint32_t ub = b & mask;
      result = isDiv ? ua / ub : ua % ub;
    }
    ctx->hvalue = truncBits(result, w);
  });
}

int32_t pscpJitCustom(JitContext* ctx, int32_t index, uint32_t a, uint32_t b) noexcept {
  return guarded(ctx, [&](JitEnv* env) {
    PSCP_ASSERT(index >= 0 &&
                static_cast<size_t>(index) < env->config->customInstructions.size());
    const hwlib::CustomInstr& ci =
        env->config->customInstructions[static_cast<size_t>(index)];
    const uint32_t cmask = maskBits(ci.width);
    uint32_t v = a & cmask;
    for (const hwlib::CustomStep& step : ci.steps) {
      const uint32_t rhs =
          step.useConst ? static_cast<uint32_t>(step.konst) & cmask : b & cmask;
      switch (step.op) {
        case hwlib::CustomOp::Add: v = v + rhs; break;
        case hwlib::CustomOp::Sub: v = v - rhs; break;
        case hwlib::CustomOp::And: v = v & rhs; break;
        case hwlib::CustomOp::Or: v = v | rhs; break;
        case hwlib::CustomOp::Xor: v = v ^ rhs; break;
        case hwlib::CustomOp::Shl: v = v << (rhs & 31); break;
        case hwlib::CustomOp::Shr: v = (v & cmask) >> (rhs & 31); break;
        case hwlib::CustomOp::Sar:
          v = static_cast<uint32_t>(signExtend(v & cmask, ci.width) >> (rhs & 31));
          break;
        case hwlib::CustomOp::Neg: v = 0 - v; break;
        case hwlib::CustomOp::Not: v = ~v; break;
      }
      v &= cmask;
    }
    ctx->hvalue = v;
  });
}

int32_t pscpJitErrRunOff(JitContext* ctx, int32_t pc) noexcept {
  guarded(ctx, [&](JitEnv* env) {
    fail("TEP%d: PC %d ran off the program (size %zu)", env->tepId, pc,
         env->programSize);
  });
  return 1;
}

int32_t pscpJitErrStackOver(JitContext* ctx) noexcept {
  guarded(ctx, [&](JitEnv* env) { fail("TEP%d: call stack overflow", env->tepId); });
  return 1;
}

int32_t pscpJitErrStackUnder(JitContext* ctx) noexcept {
  guarded(ctx,
          [&](JitEnv* env) { fail("TEP%d: RET with empty call stack", env->tepId); });
  return 1;
}

int32_t pscpJitErrBudget(JitContext* ctx) noexcept {
  guarded(ctx, [&](JitEnv* env) {
    fail("PSCP configuration cycle exceeded %lld machine cycles",
         static_cast<long long>(env->budgetLimit));
  });
  return 1;
}

}  // extern "C"

}  // namespace pscp::tep::jit
