// Tier selection for TEP routines: interpreter (reference, always
// available) vs compiled native code.
//
// Promotion policy: with mode kAlways every routine is compiled on its
// first dispatch; with kAuto a routine is compiled once its execution
// count crosses the threshold (hotness, fed by the same per-transition
// counters the profiler attributes cycles to); kOff never compiles. A
// routine that fails lowering or emission is marked Rejected and stays on
// the interpreter forever — rejection is a performance decision, never a
// correctness one, because the interpreter is the semantics.
//
// The cache lives per ChartImage, so a fleet of thousands of instances
// compiles each routine once and shares the read-execute pages; per-run
// state (JitContext) is per machine, which keeps multi-worker stepping
// race-free without locks on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hwlib/arch_config.hpp"
#include "tep/isa.hpp"
#include "tep/jit/codebuf.hpp"
#include "tep/jit/runtime.hpp"

namespace pscp::tep::jit {

enum class JitMode : uint8_t {
  kOff,     ///< interpreter only
  kAuto,    ///< compile when a routine crosses the hotness threshold
  kAlways,  ///< compile every routine on first dispatch
};

[[nodiscard]] const char* jitModeName(JitMode mode);

/// Parse "off" / "auto" / "always" (case-sensitive, like PSCP_SIMD).
/// Returns false on unknown values.
[[nodiscard]] bool parseJitMode(const std::string& text, JitMode* out);

/// Process-wide mode from PSCP_JIT (cached on first use). Unset or
/// unparsable -> kAuto.
[[nodiscard]] JitMode jitModeFromEnv();

/// True when this build/host can emit and run native code (x86-64 Linux
/// with the emitter compiled in). When false every mode degrades to the
/// interpreter — kAuto/kAlways are safe to request anywhere.
[[nodiscard]] constexpr bool jitBackendAvailable() { return PSCP_JIT_BACKEND != 0; }

/// Default hotness threshold (routine executions before compilation) for
/// kAuto. Low enough that steady-state fleet workloads promote within the
/// first epochs, high enough that one-shot configuration routines don't
/// pay compile time.
inline constexpr int64_t kDefaultJitThreshold = 64;

enum class RoutineState : uint8_t { kNotCompiled, kCompiling, kNative, kRejected };

/// Stable display name ("interp", "compiling", "native", "rejected").
[[nodiscard]] const char* routineStateName(RoutineState state);

/// Tier residency summary (pscp_prof / pscp_top / fleet metrics).
struct TierResidency {
  int nativeRoutines = 0;
  int rejectedRoutines = 0;
  int interpretedRoutines = 0;  ///< seen at least once, still interpreted
  int64_t compileMicros = 0;
  int64_t nativeRuns = 0;
  int64_t interpRuns = 0;
};

/// Per-image compile cache, keyed by transition id. Thread-safe: the hot
/// path is one relaxed counter bump plus an acquire load; compilation is
/// serialized behind a mutex and publishes with release ordering.
class TierCache {
 public:
  TierCache(const AsmProgram* program, const hwlib::ArchConfig* config,
            int transitionCount);

  /// Called per dispatch. Bumps the routine's execution counter, applies
  /// the promotion policy, and returns the native entry point when the
  /// routine is (now) compiled — nullptr means "interpret this run".
  [[nodiscard]] CompiledFn dispatch(int transition, int entry, JitMode mode,
                                    int64_t threshold);

  /// Force-compile a routine (profiler-seeded AOT). Returns false with
  /// `reason` when lowering/emission rejects it.
  bool precompile(int transition, int entry, std::string* reason = nullptr);

  void recordNativeRun(int transition);
  void recordInterpRun(int transition);

  [[nodiscard]] TierResidency residency() const;
  [[nodiscard]] RoutineState stateOf(int transition) const;
  [[nodiscard]] int64_t execCount(int transition) const;

 private:
  struct Slot {
    std::atomic<uint8_t> state{static_cast<uint8_t>(RoutineState::kNotCompiled)};
    std::atomic<int64_t> execs{0};
    std::atomic<int64_t> nativeRuns{0};
    std::atomic<int64_t> interpRuns{0};
    CodeBuf buf;
    std::atomic<CompiledFn> fn{nullptr};
  };

  bool compileSlot(Slot& slot, int entry, std::string* reason);

  const AsmProgram* program_;
  const hwlib::ArchConfig* config_;
  std::unique_ptr<Slot[]> slots_;
  int count_ = 0;
  std::mutex compileMutex_;
  std::atomic<int64_t> compileMicros_{0};
};

}  // namespace pscp::tep::jit
