// x86-64 template emitter for lowered TEP routines.
//
// Register plan (SysV): rbx = ACC, r12d = OP, r15d = address temp,
// r13 = cycle counter, r14 = JitContext*. eax/ecx/edx are scratch. All
// five pinned registers are callee-saved, so helper calls need no
// spills; five pushes keep rsp 16-byte aligned at every call site.
// Z/N/C live as bytes in the JitContext and are updated with setcc only
// where the IR says the flag is (still) live.
//
// Control flow stays inside the emitted routine: TEP Call/Ret use a
// shadow stack of native return addresses in the JitContext (depth 32,
// like the interpreter), so rsp never moves between the prologue and
// epilogue and the ABI alignment above holds everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tep/ir.hpp"

namespace pscp::tep::jit {

struct EmitResult {
  bool ok = false;
  std::string error;
  std::vector<uint8_t> code;
};

/// Emit native code for a lowered routine. Fails (never mis-emits) on
/// unsupported shapes; the caller keeps the routine interpreted. Only
/// meaningful when PSCP_JIT_BACKEND — other builds always fail.
[[nodiscard]] EmitResult emitX64(const ir::IrRoutine& routine);

}  // namespace pscp::tep::jit
