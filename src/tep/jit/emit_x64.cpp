#include "tep/jit/emit_x64.hpp"

#include <map>

#include "support/bits.hpp"
#include "support/diag.hpp"
#include "tep/jit/codebuf.hpp"
#include "tep/jit/runtime.hpp"

#if PSCP_JIT_BACKEND

namespace pscp::tep::jit {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::IrRoutine;

// Register numbers (x86-64 encoding).
constexpr int kRax = 0, kRcx = 1, kRdx = 2, kRbx = 3, kRsi = 6, kRdi = 7;
constexpr int kR8 = 8, kR12 = 12, kR13 = 13, kR14 = 14, kR15 = 15;

// Condition codes (for setcc 0F 90+cc / jcc 0F 80+cc).
constexpr uint8_t kCcB = 0x2;   // below / carry set
constexpr uint8_t kCcE = 0x4;   // equal / zero
constexpr uint8_t kCcNe = 0x5;  // not equal
constexpr uint8_t kCcS = 0x8;   // sign set
constexpr uint8_t kCcL = 0xC;   // signed less
constexpr uint8_t kCcGe = 0xD;  // signed greater-or-equal
constexpr uint8_t kCcG = 0xF;   // signed greater

int vregReg(int v) {
  switch (v) {
    case ir::kVregAcc: return kRbx;
    case ir::kVregOp: return kR12;
    case ir::kVregTmp: return kR15;
    default: PSCP_ASSERT(false); return kRax;
  }
}

class Asm {
 public:
  std::vector<uint8_t> code;

  int newLabel() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size()) - 1;
  }
  void bind(int label) {
    PSCP_ASSERT(labels_[static_cast<size_t>(label)] < 0);
    labels_[static_cast<size_t>(label)] = static_cast<int64_t>(code.size());
  }

  void byte(uint8_t b) { code.push_back(b); }
  void i32(int32_t v) {
    for (int i = 0; i < 4; ++i) byte(static_cast<uint8_t>((static_cast<uint32_t>(v) >> (8 * i)) & 0xFF));
  }
  void i64(uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
  void rex(bool w, int reg, int index, int rm) {
    const uint8_t r = 0x40 | (w ? 8 : 0) | ((reg >= 8) ? 4 : 0) |
                      ((index >= 8) ? 2 : 0) | ((rm >= 8) ? 1 : 0);
    if (r != 0x40 || w) byte(r);
  }
  void modrm(int mod, int reg, int rm) {
    byte(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }
  /// [base + disp32] memory operand (base must not be rsp/rbp-class; we
  /// only ever use r14, whose low bits avoid the SIB/disp escapes).
  void mem(int reg, int base, int32_t disp) {
    PSCP_ASSERT((base & 7) != 4 && (base & 7) != 5);
    modrm(2, reg, base);
    i32(disp);
  }

  void push(int r) { rex(false, 0, 0, r); byte(static_cast<uint8_t>(0x50 | (r & 7))); }
  void pop(int r) { rex(false, 0, 0, r); byte(static_cast<uint8_t>(0x58 | (r & 7))); }

  void movRI(int r, uint32_t imm) {
    rex(false, 0, 0, r);
    byte(static_cast<uint8_t>(0xB8 | (r & 7)));
    i32(static_cast<int32_t>(imm));
  }
  void movRI64(int r, uint64_t imm) {
    rex(true, 0, 0, r);
    byte(static_cast<uint8_t>(0xB8 | (r & 7)));
    i64(imm);
  }
  void movRR(int dst, int src) {  // 32-bit
    rex(false, src, 0, dst);
    byte(0x89);
    modrm(3, src, dst);
  }
  void movRR64(int dst, int src) {
    rex(true, src, 0, dst);
    byte(0x89);
    modrm(3, src, dst);
  }
  void movRM(int dst, int base, int32_t disp) {  // mov r32, [base+disp]
    rex(false, dst, 0, base);
    byte(0x8B);
    mem(dst, base, disp);
  }
  void movMR(int base, int32_t disp, int src) {  // mov [base+disp], r32
    rex(false, src, 0, base);
    byte(0x89);
    mem(src, base, disp);
  }
  void movRM64(int dst, int base, int32_t disp) {
    rex(true, dst, 0, base);
    byte(0x8B);
    mem(dst, base, disp);
  }
  void movMR64(int base, int32_t disp, int src) {
    rex(true, src, 0, base);
    byte(0x89);
    mem(src, base, disp);
  }
  void movByteMI(int base, int32_t disp, uint8_t imm) {  // mov byte [..], imm
    rex(false, 0, 0, base);
    byte(0xC6);
    mem(0, base, disp);
    byte(imm);
  }
  void cmpByteMI(int base, int32_t disp, uint8_t imm) {  // cmp byte [..], imm
    rex(false, 7, 0, base);
    byte(0x80);
    mem(7, base, disp);
    byte(imm);
  }
  void setccM(uint8_t cc, int base, int32_t disp) {  // setcc byte [..]
    rex(false, 0, 0, base);
    byte(0x0F);
    byte(static_cast<uint8_t>(0x90 | cc));
    mem(0, base, disp);
  }

  void aluRR(uint8_t opcode, int dst, int src) {  // 32-bit op dst, src
    rex(false, src, 0, dst);
    byte(opcode);
    modrm(3, src, dst);
  }
  void addRR(int d, int s) { aluRR(0x01, d, s); }
  void subRR(int d, int s) { aluRR(0x29, d, s); }
  void andRR(int d, int s) { aluRR(0x21, d, s); }
  void orRR(int d, int s) { aluRR(0x09, d, s); }
  void xorRR(int d, int s) { aluRR(0x31, d, s); }
  void cmpRR(int d, int s) { aluRR(0x39, d, s); }
  void testRR(int d, int s) { aluRR(0x85, d, s); }

  void aluRI(int ext, int r, int32_t imm) {  // 81 /ext r32, imm32
    rex(false, 0, 0, r);
    byte(0x81);
    modrm(3, ext, r);
    i32(imm);
  }
  void addRI(int r, int32_t imm) { aluRI(0, r, imm); }
  void andRI(int r, uint32_t imm) { aluRI(4, r, static_cast<int32_t>(imm)); }
  void addR64I(int r, int32_t imm) {
    rex(true, 0, 0, r);
    byte(0x81);
    modrm(3, 0, r);
    i32(imm);
  }
  void cmpR64M(int r, int base, int32_t disp) {  // cmp r64, [base+disp]
    rex(true, r, 0, base);
    byte(0x3B);
    mem(r, base, disp);
  }

  void notR(int r) { rex(false, 0, 0, r); byte(0xF7); modrm(3, 2, r); }
  void negR(int r) { rex(false, 0, 0, r); byte(0xF7); modrm(3, 3, r); }
  void imulRR(int dst, int src) {
    rex(false, dst, 0, src);
    byte(0x0F);
    byte(0xAF);
    modrm(3, dst, src);
  }
  void shiftRI(int ext, int r, uint8_t count) {  // C1 /ext r32, imm8
    rex(false, 0, 0, r);
    byte(0xC1);
    modrm(3, ext, r);
    byte(count);
  }
  void shlRI(int r, uint8_t c) { shiftRI(4, r, c); }
  void shrRI(int r, uint8_t c) { shiftRI(5, r, c); }
  void sarRI(int r, uint8_t c) { shiftRI(7, r, c); }
  void btRI(int r, uint8_t bit) {  // bt r32, imm8 -> CF
    rex(false, 0, 0, r);
    byte(0x0F);
    byte(0xBA);
    modrm(3, 4, r);
    byte(bit);
  }

  void jmpLabel(int label) {
    byte(0xE9);
    fixups_.push_back({static_cast<int64_t>(code.size()), label});
    i32(0);
  }
  void jccLabel(uint8_t cc, int label) {
    byte(0x0F);
    byte(static_cast<uint8_t>(0x80 | cc));
    fixups_.push_back({static_cast<int64_t>(code.size()), label});
    i32(0);
  }
  void leaRipLabel(int r, int label) {  // lea r64, [rip + label]
    rex(true, r, 0, 5);
    byte(0x8D);
    modrm(0, r, 5);
    fixups_.push_back({static_cast<int64_t>(code.size()), label});
    i32(0);
  }
  void callR64(int r) { rex(false, 0, 0, r); byte(0xFF); modrm(3, 2, r); }
  void jmpR64(int r) { rex(false, 0, 0, r); byte(0xFF); modrm(3, 4, r); }
  /// mov [base + index*8 + disp], r64  /  mov r64, [base + index*8 + disp]
  void movSibR64(bool store, int base, int index, int32_t disp, int r) {
    rex(true, r, index, base);
    byte(store ? 0x89 : 0x8B);
    modrm(2, r, 4);  // rm=100 -> SIB follows
    byte(static_cast<uint8_t>((3 << 6) | ((index & 7) << 3) | (base & 7)));
    i32(disp);
  }
  void ret() { byte(0xC3); }

  bool resolve(std::string* error) {
    for (const Fixup& f : fixups_) {
      const int64_t target = labels_[static_cast<size_t>(f.label)];
      if (target < 0) {
        if (error != nullptr) *error = "unresolved label";
        return false;
      }
      const int64_t rel = target - (f.pos + 4);
      if (rel < INT32_MIN || rel > INT32_MAX) {
        if (error != nullptr) *error = "branch out of rel32 range";
        return false;
      }
      for (int i = 0; i < 4; ++i)
        code[static_cast<size_t>(f.pos) + static_cast<size_t>(i)] =
            static_cast<uint8_t>((static_cast<uint32_t>(rel) >> (8 * i)) & 0xFF);
    }
    return true;
  }

 private:
  struct Fixup {
    int64_t pos;  ///< offset of the rel32 field
    int label;
  };
  std::vector<int64_t> labels_;
  std::vector<Fixup> fixups_;
};

class RoutineEmitter {
 public:
  explicit RoutineEmitter(const IrRoutine& r) : r_(r) {}

  EmitResult run();

 private:
  const IrRoutine& r_;
  Asm a_;
  std::map<int, int> anchorLabel_;  ///< ISA index -> label
  std::map<int, int> runoffLabel_;  ///< invalid target -> stub label
  int exitOk_ = -1, errExit_ = -1, budgetFail_ = -1, stackOver_ = -1,
      stackUnder_ = -1;
  bool needBudget_ = false, needOver_ = false, needUnder_ = false;

  int targetLabel(int isaTarget);
  void helperCall(const void* fn, int nargs, const int32_t* immArgs,
                  const int* regArgs);
  void finishValueFlags(const IrInst& in, int w);
  void emitInst(const IrInst& in);
  void emitAlu(const IrInst& in);
  void emitShift(const IrInst& in);
  void emitCmp(const IrInst& in);
  void emitBranch(const IrInst& in);
  void emitCall(const IrInst& in);
  void chargeAndBudget(const IrInst& in);
};

int RoutineEmitter::targetLabel(int isaTarget) {
  auto it = anchorLabel_.find(isaTarget);
  if (it != anchorLabel_.end()) return it->second;
  auto [sit, inserted] = runoffLabel_.try_emplace(isaTarget, -1);
  if (inserted) sit->second = a_.newLabel();
  return sit->second;
}

/// Call a runtime helper. Args beyond ctx are described positionally:
/// regArgs[i] >= 0 takes a machine register (32-bit), else immArgs[i] is
/// a literal. r13 (cycles) is synced out/in around the call because
/// memory helpers charge external wait states.
void RoutineEmitter::helperCall(const void* fn, int nargs, const int32_t* immArgs,
                                const int* regArgs) {
  static constexpr int kArgReg[4] = {kRsi, kRdx, kRcx, kR8};
  a_.movMR64(kR14, kCtxCycles, kR13);
  a_.movRR64(kRdi, kR14);
  for (int i = 0; i < nargs; ++i) {
    if (regArgs != nullptr && regArgs[i] >= 0)
      a_.movRR(kArgReg[i], regArgs[i]);
    else
      a_.movRI(kArgReg[i], static_cast<uint32_t>(immArgs[i]));
  }
  a_.movRI64(kRax, reinterpret_cast<uint64_t>(fn));
  a_.callR64(kRax);
  a_.testRR(kRax, kRax);
  a_.jccLabel(kCcNe, errExit_);
  a_.movRM64(kR13, kR14, kCtxCycles);
}

/// Mask eax to `w` bits, then store the requested flags from it and move
/// it into the destination vreg. ZF/SF come from the masking AND (or a
/// TEST at full width); N for narrow widths reads bit w-1 via BT.
void RoutineEmitter::finishValueFlags(const IrInst& in, int w) {
  if (w < 32)
    a_.andRI(kRax, maskBits(w));
  else
    a_.testRR(kRax, kRax);
  if (in.setZ) a_.setccM(kCcE, kR14, kCtxFlagZ);
  if (in.setN) {
    if (w == 32) {
      a_.setccM(kCcS, kR14, kCtxFlagN);
    } else {
      a_.btRI(kRax, static_cast<uint8_t>(w - 1));
      a_.setccM(kCcB, kR14, kCtxFlagN);
    }
  }
  if (in.dst >= 0) a_.movRR(vregReg(in.dst), kRax);
}

void RoutineEmitter::emitAlu(const IrInst& in) {
  const int w = in.width;
  const uint32_t m = maskBits(w);
  const bool binary = in.src2 >= 0;
  a_.movRR(kRax, vregReg(in.src1));
  if (binary) a_.movRR(kRcx, vregReg(in.src2));
  const bool needMaskedOperands =
      (in.op == IrOp::kAdd || in.op == IrOp::kSub) && w < 32;
  if (needMaskedOperands) {
    a_.andRI(kRax, m);
    a_.andRI(kRcx, m);
  }
  switch (in.op) {
    case IrOp::kAdd: a_.addRR(kRax, kRcx); break;
    case IrOp::kSub: a_.subRR(kRax, kRcx); break;
    case IrOp::kAnd: a_.andRR(kRax, kRcx); break;
    case IrOp::kOr: a_.orRR(kRax, kRcx); break;
    case IrOp::kXor: a_.xorRR(kRax, kRcx); break;
    case IrOp::kNot: a_.notR(kRax); break;
    case IrOp::kNeg: a_.negR(kRax); break;
    case IrOp::kMul: a_.imulRR(kRax, kRcx); break;
    default: PSCP_ASSERT(false);
  }
  if (in.setC) {
    // Interpreter carry: Add -> carry out of the w-bit sum of masked
    // operands (bit w of the 32-bit sum, which cannot carry past bit w+1
    // for w < 32); Sub -> unsigned borrow, which with masked operands is
    // exactly the host CF.
    if (in.op == IrOp::kSub || w == 32) {
      a_.setccM(kCcB, kR14, kCtxFlagC);
    } else {
      a_.btRI(kRax, static_cast<uint8_t>(w));
      a_.setccM(kCcB, kR14, kCtxFlagC);
    }
  }
  finishValueFlags(in, w);
}

void RoutineEmitter::emitShift(const IrInst& in) {
  const int w = in.width;
  const uint8_t count = static_cast<uint8_t>(in.imm & 31);
  a_.movRR(kRax, vregReg(in.src1));
  switch (in.op) {
    case IrOp::kShl:
      // Raw ACC shifted, then truncated — stale bits above w shift out of
      // the mask, so no pre-mask is needed (matches the interpreter).
      if (count != 0) a_.shlRI(kRax, count);
      break;
    case IrOp::kShr:
      if (w < 32) a_.andRI(kRax, maskBits(w));
      if (count != 0) a_.shrRI(kRax, count);
      break;
    case IrOp::kSar:
      if (w < 32) {
        a_.shlRI(kRax, static_cast<uint8_t>(32 - w));
        a_.sarRI(kRax, static_cast<uint8_t>(32 - w));
      }
      if (count != 0) a_.sarRI(kRax, count);
      break;
    default: PSCP_ASSERT(false);
  }
  finishValueFlags(in, w);
}

void RoutineEmitter::emitCmp(const IrInst& in) {
  const int w = in.width;
  a_.movRR(kRax, vregReg(in.src1));
  a_.movRR(kRcx, vregReg(in.src2));
  if (w < 32) {
    a_.andRI(kRax, maskBits(w));
    a_.andRI(kRcx, maskBits(w));
  }
  a_.cmpRR(kRax, kRcx);
  if (in.setZ) a_.setccM(kCcE, kR14, kCtxFlagZ);
  if (in.setC) a_.setccM(kCcB, kR14, kCtxFlagC);
  if (in.setN) {
    if (w == 32) {
      a_.setccM(kCcL, kR14, kCtxFlagN);
    } else {
      // Signed compare at width w: sign-extend both, compare again.
      a_.shlRI(kRax, static_cast<uint8_t>(32 - w));
      a_.sarRI(kRax, static_cast<uint8_t>(32 - w));
      a_.shlRI(kRcx, static_cast<uint8_t>(32 - w));
      a_.sarRI(kRcx, static_cast<uint8_t>(32 - w));
      a_.cmpRR(kRax, kRcx);
      a_.setccM(kCcL, kR14, kCtxFlagN);
    }
  }
}

/// Taken-edge bookkeeping shared by jumps and calls: charge threaded-away
/// cycles, then trip the configuration-cycle guard on loop-capable edges
/// (backward jumps and calls — forward straight-line code is bounded by
/// its static cost and cannot run away).
void RoutineEmitter::chargeAndBudget(const IrInst& in) {
  if (in.imm2 != 0) a_.addR64I(kR13, in.imm2);
  const bool loopCapable = in.op == IrOp::kCall || in.imm <= in.isa;
  if (loopCapable) {
    if (budgetFail_ < 0) budgetFail_ = a_.newLabel();
    needBudget_ = true;
    a_.cmpR64M(kR13, kR14, kCtxBudget);
    a_.jccLabel(kCcG, budgetFail_);
  }
}

void RoutineEmitter::emitBranch(const IrInst& in) {
  if (in.op == IrOp::kJump) {
    chargeAndBudget(in);
    a_.jmpLabel(targetLabel(in.imm));
    return;
  }
  // Conditional: test the flag byte, skip the taken path when not taken.
  int32_t flagOff = kCtxFlagZ;
  bool takenWhenSet = true;
  switch (in.op) {
    case IrOp::kJz: flagOff = kCtxFlagZ; break;
    case IrOp::kJnz: flagOff = kCtxFlagZ; takenWhenSet = false; break;
    case IrOp::kJn: flagOff = kCtxFlagN; break;
    case IrOp::kJc: flagOff = kCtxFlagC; break;
    default: PSCP_ASSERT(false);
  }
  const int skip = a_.newLabel();
  a_.cmpByteMI(kR14, flagOff, 0);
  a_.jccLabel(takenWhenSet ? kCcE : kCcNe, skip);  // inverted: fall through
  chargeAndBudget(in);
  a_.jmpLabel(targetLabel(in.imm));
  a_.bind(skip);
}

void RoutineEmitter::emitCall(const IrInst& in) {
  if (stackOver_ < 0) stackOver_ = a_.newLabel();
  needOver_ = true;
  const int cont = a_.newLabel();
  a_.movRM(kRax, kR14, kCtxCallDepth);
  a_.aluRI(7 /*cmp*/, kRax, 32);
  a_.jccLabel(kCcGe, stackOver_);
  a_.leaRipLabel(kRcx, cont);
  a_.movSibR64(true, kR14, kRax, kCtxCallStack, kRcx);
  a_.addRI(kRax, 1);
  a_.movMR(kR14, kCtxCallDepth, kRax);
  chargeAndBudget(in);
  a_.jmpLabel(targetLabel(in.imm));
  a_.bind(cont);
}

void RoutineEmitter::emitInst(const IrInst& in) {
  const uint32_t m = maskBits(in.width);
  switch (in.op) {
    case IrOp::kAddCycles:
      if (in.imm != 0) a_.addR64I(kR13, in.imm);
      break;
    case IrOp::kLoadImm:
      a_.movRI(vregReg(in.dst), static_cast<uint32_t>(in.imm));
      break;
    case IrOp::kCopy:
      if (in.dst != in.src1) a_.movRR(vregReg(in.dst), vregReg(in.src1));
      break;
    case IrOp::kMask:
      if (in.dst != in.src1) a_.movRR(vregReg(in.dst), vregReg(in.src1));
      a_.andRI(vregReg(in.dst), static_cast<uint32_t>(in.imm));
      break;
    case IrOp::kAddImm:
      if (in.dst != in.src1) a_.movRR(vregReg(in.dst), vregReg(in.src1));
      a_.addRI(vregReg(in.dst), in.imm);
      break;
    case IrOp::kAdd:
    case IrOp::kSub:
    case IrOp::kAnd:
    case IrOp::kOr:
    case IrOp::kXor:
    case IrOp::kNot:
    case IrOp::kNeg:
    case IrOp::kMul:
      emitAlu(in);
      break;
    case IrOp::kShl:
    case IrOp::kShr:
    case IrOp::kSar:
      emitShift(in);
      break;
    case IrOp::kCmp:
      emitCmp(in);
      break;
    case IrOp::kDivMod: {
      const int32_t packed = in.width | (in.signedOp ? 1 << 8 : 0) |
                             (in.isDiv ? 1 << 9 : 0);
      const int32_t imms[4] = {0, 0, packed, in.imm};
      const int regs[4] = {vregReg(in.src1), vregReg(in.src2), -1, -1};
      helperCall(reinterpret_cast<const void*>(&pscpJitDivMod), 4, imms, regs);
      a_.movRM(kRax, kR14, kCtxHvalue);
      finishValueFlags(in, in.width);
      break;
    }
    case IrOp::kLoad:
    case IrOp::kLoadAt: {
      const int32_t imms[2] = {in.imm, in.imm2};
      const int regs[2] = {in.op == IrOp::kLoadAt ? vregReg(in.src1) : -1, -1};
      helperCall(reinterpret_cast<const void*>(&pscpJitLoad), 2, imms, regs);
      a_.movRM(kRax, kR14, kCtxHvalue);
      if (in.width < 32) a_.andRI(kRax, m);
      a_.movRR(vregReg(in.dst), kRax);
      break;
    }
    case IrOp::kStore:
    case IrOp::kStoreAt: {
      const int valueVreg = in.op == IrOp::kStoreAt ? in.src2 : in.src1;
      a_.movRR(kRdx, vregReg(valueVreg));
      if (in.width < 32) a_.andRI(kRdx, m);
      // Arg 1 (edx) is already in place; helperCall skips it via reg -2.
      const int32_t imms[3] = {in.imm, 0, in.imm2};
      const int regs[3] = {in.op == IrOp::kStoreAt ? vregReg(in.src1) : -1, -2, -1};
      // -2 sentinel: leave the register untouched.
      static constexpr int kArgReg[4] = {kRsi, kRdx, kRcx, kR8};
      a_.movMR64(kR14, kCtxCycles, kR13);
      a_.movRR64(kRdi, kR14);
      for (int i = 0; i < 3; ++i) {
        if (regs[i] == -2) continue;
        if (regs[i] >= 0)
          a_.movRR(kArgReg[i], regs[i]);
        else
          a_.movRI(kArgReg[i], static_cast<uint32_t>(imms[i]));
      }
      a_.movRI64(kRax, reinterpret_cast<uint64_t>(
                           reinterpret_cast<const void*>(&pscpJitStore)));
      a_.callR64(kRax);
      a_.testRR(kRax, kRax);
      a_.jccLabel(kCcNe, errExit_);
      a_.movRM64(kR13, kR14, kCtxCycles);
      break;
    }
    case IrOp::kRegGet: {
      const int32_t imms[1] = {in.imm};
      helperCall(reinterpret_cast<const void*>(&pscpJitRegGet), 1, imms, nullptr);
      a_.movRM(kRax, kR14, kCtxHvalue);
      if (in.width < 32) a_.andRI(kRax, m);
      a_.movRR(vregReg(in.dst), kRax);
      break;
    }
    case IrOp::kRegSet: {
      a_.movRR(kRdx, vregReg(in.src1));
      if (in.width < 32) a_.andRI(kRdx, m);
      const int32_t imms[2] = {in.imm, 0};
      const int regs[2] = {-1, kRdx};
      helperCall(reinterpret_cast<const void*>(&pscpJitRegSet), 2, imms, regs);
      break;
    }
    case IrOp::kPortRead: {
      const int32_t imms[1] = {in.imm};
      helperCall(reinterpret_cast<const void*>(&pscpJitPortRead), 1, imms, nullptr);
      // PortRead loads ACC unmasked, exactly like the interpreter.
      a_.movRM(vregReg(in.dst), kR14, kCtxHvalue);
      break;
    }
    case IrOp::kPortWrite: {
      a_.movRR(kRdx, vregReg(in.src1));
      if (in.width < 32) a_.andRI(kRdx, m);
      const int32_t imms[3] = {in.imm, 0, in.imm2};
      const int regs[3] = {-1, kRdx, -1};
      helperCall(reinterpret_cast<const void*>(&pscpJitPortWrite), 3, imms, regs);
      break;
    }
    case IrOp::kEvSet: {
      const int32_t imms[1] = {in.imm};
      helperCall(reinterpret_cast<const void*>(&pscpJitEvSet), 1, imms, nullptr);
      break;
    }
    case IrOp::kCondSet: {
      const int32_t imms[2] = {in.imm, in.imm2};
      helperCall(reinterpret_cast<const void*>(&pscpJitCondSet), 2, imms, nullptr);
      break;
    }
    case IrOp::kCondTest:
    case IrOp::kStateTest: {
      const int32_t imms[1] = {in.imm};
      helperCall(in.op == IrOp::kCondTest
                     ? reinterpret_cast<const void*>(&pscpJitCondTest)
                     : reinterpret_cast<const void*>(&pscpJitStateTest),
                 1, imms, nullptr);
      a_.movRM(kRax, kR14, kCtxHvalue);
      a_.movRR(vregReg(in.dst), kRax);
      if (in.setZ) {
        a_.testRR(kRax, kRax);
        a_.setccM(kCcE, kR14, kCtxFlagZ);
      }
      break;
    }
    case IrOp::kCustom: {
      const int32_t imms[3] = {in.imm, 0, 0};
      const int regs[3] = {-1, vregReg(in.src1), vregReg(in.src2)};
      helperCall(reinterpret_cast<const void*>(&pscpJitCustom), 3, imms, regs);
      a_.movRM(kRax, kR14, kCtxHvalue);
      finishValueFlags(in, in.imm2);  // flags at the chain's width
      break;
    }
    case IrOp::kJump:
    case IrOp::kJz:
    case IrOp::kJnz:
    case IrOp::kJn:
    case IrOp::kJc:
      emitBranch(in);
      break;
    case IrOp::kCall:
      emitCall(in);
      break;
    case IrOp::kRet: {
      if (stackUnder_ < 0) stackUnder_ = a_.newLabel();
      needUnder_ = true;
      a_.movRM(kRax, kR14, kCtxCallDepth);
      a_.testRR(kRax, kRax);
      a_.jccLabel(kCcE, stackUnder_);
      a_.aluRI(5 /*sub*/, kRax, 1);
      a_.movMR(kR14, kCtxCallDepth, kRax);
      a_.movSibR64(false, kR14, kRax, kCtxCallStack, kRcx);
      a_.jmpR64(kRcx);
      break;
    }
    case IrOp::kTret:
      a_.jmpLabel(exitOk_);
      break;
    case IrOp::kRunOff: {
      a_.movRR64(kRdi, kR14);
      a_.movRI(kRsi, static_cast<uint32_t>(in.imm));
      a_.movRI64(kRax, reinterpret_cast<uint64_t>(
                           reinterpret_cast<const void*>(&pscpJitErrRunOff)));
      a_.callR64(kRax);
      a_.jmpLabel(errExit_);
      break;
    }
    case IrOp::kSetZ:
      a_.movByteMI(kR14, kCtxFlagZ, in.imm != 0 ? 1 : 0);
      break;
    case IrOp::kSetN:
      a_.movByteMI(kR14, kCtxFlagN, in.imm != 0 ? 1 : 0);
      break;
    case IrOp::kSetC:
      a_.movByteMI(kR14, kCtxFlagC, in.imm != 0 ? 1 : 0);
      break;
  }
}

EmitResult RoutineEmitter::run() {
  EmitResult res;
  exitOk_ = a_.newLabel();
  errExit_ = a_.newLabel();

  // Labels for every lowered instruction anchor.
  for (const IrInst& in : r_.code)
    if (in.op == IrOp::kAddCycles && anchorLabel_.find(in.isa) == anchorLabel_.end())
      anchorLabel_[in.isa] = a_.newLabel();
  auto entryIt = anchorLabel_.find(r_.entryIsa);
  if (entryIt == anchorLabel_.end()) {
    res.error = "entry anchor missing";
    return res;
  }

  // Prologue: pin registers, seed machine state from the context.
  a_.push(kRbx);
  a_.push(kR12);
  a_.push(kR13);
  a_.push(kR14);
  a_.push(kR15);
  a_.movRR64(kR14, kRdi);
  a_.movRM(kRbx, kR14, kCtxAcc);
  a_.movRM(kR12, kR14, kCtxOp);
  a_.xorRR(kR15, kR15);
  a_.movRM64(kR13, kR14, kCtxCycles);
  a_.jmpLabel(entryIt->second);

  for (const IrInst& in : r_.code) {
    if (in.op == IrOp::kAddCycles) a_.bind(anchorLabel_.at(in.isa));
    emitInst(in);
  }

  // Shared tails.
  const int epilogue = a_.newLabel();
  a_.bind(exitOk_);
  a_.xorRR(kRax, kRax);
  a_.jmpLabel(epilogue);
  a_.bind(errExit_);
  a_.movRI(kRax, 1);
  a_.bind(epilogue);
  a_.movRR64(kRcx, kRax);  // preserve status across the state sync
  a_.movMR(kR14, kCtxAcc, kRbx);
  a_.movMR(kR14, kCtxOp, kR12);
  a_.movMR64(kR14, kCtxCycles, kR13);
  a_.movRR64(kRax, kRcx);
  a_.pop(kR15);
  a_.pop(kR14);
  a_.pop(kR13);
  a_.pop(kR12);
  a_.pop(kRbx);
  a_.ret();

  if (needBudget_) {
    a_.bind(budgetFail_);
    a_.movRR64(kRdi, kR14);
    a_.movRI64(kRax, reinterpret_cast<uint64_t>(
                         reinterpret_cast<const void*>(&pscpJitErrBudget)));
    a_.callR64(kRax);
    a_.jmpLabel(errExit_);
  }
  if (needOver_) {
    a_.bind(stackOver_);
    a_.movRR64(kRdi, kR14);
    a_.movRI64(kRax, reinterpret_cast<uint64_t>(
                         reinterpret_cast<const void*>(&pscpJitErrStackOver)));
    a_.callR64(kRax);
    a_.jmpLabel(errExit_);
  }
  if (needUnder_) {
    a_.bind(stackUnder_);
    a_.movRR64(kRdi, kR14);
    a_.movRI64(kRax, reinterpret_cast<uint64_t>(
                         reinterpret_cast<const void*>(&pscpJitErrStackUnder)));
    a_.callR64(kRax);
    a_.jmpLabel(errExit_);
  }
  // Stubs for jumps whose target is outside the program: the interpreter
  // raises "ran off" when it fetches there.
  for (const auto& [target, label] : runoffLabel_) {
    a_.bind(label);
    a_.movRR64(kRdi, kR14);
    a_.movRI(kRsi, static_cast<uint32_t>(target));
    a_.movRI64(kRax, reinterpret_cast<uint64_t>(
                         reinterpret_cast<const void*>(&pscpJitErrRunOff)));
    a_.callR64(kRax);
    a_.jmpLabel(errExit_);
  }

  if (!a_.resolve(&res.error)) return res;
  res.code = std::move(a_.code);
  res.ok = true;
  return res;
}

}  // namespace

EmitResult emitX64(const ir::IrRoutine& routine) {
  return RoutineEmitter(routine).run();
}

}  // namespace pscp::tep::jit

#else  // !PSCP_JIT_BACKEND

namespace pscp::tep::jit {

EmitResult emitX64(const ir::IrRoutine& routine) {
  (void)routine;
  EmitResult res;
  res.error = "native tier unavailable on this build";
  return res;
}

}  // namespace pscp::tep::jit

#endif
