// Internal contract between the analyzer driver and its passes. Not part
// of the public analysis API — include analysis/analyzer.hpp instead.
#pragma once

#include <vector>

#include "actionlang/ast.hpp"
#include "analysis/analyzer.hpp"
#include "analysis/effects.hpp"
#include "analysis/finding.hpp"
#include "sla/sla.hpp"
#include "statechart/chart.hpp"
#include "statechart/semantics.hpp"

namespace pscp::analysis {

/// Everything a pass may consult, built once by Analyzer::run().
struct AnalysisContext {
  const statechart::Chart& chart;
  const actionlang::Program& program;
  const AnalyzerOptions& options;
  const sla::CrLayout& layout;
  const sla::Sla& sla;
  const statechart::Interpreter& interp;  ///< for exitSet/enterSet/scopeOf
  const compiler::CompiledApp* compiled;  ///< null when not attached
  const std::vector<EffectSet>& effects;  ///< indexed by TransitionId
  const std::vector<BadJump>& badJumps;   ///< from the compiled-code scan
  AnalysisResult* result;
};

/// True when the SLA can select `a` and `b` in the same CR decode: some
/// pair of their product terms is mask-compatible and their source states
/// are not structurally exclusive. Shared by the conflict and race passes.
[[nodiscard]] bool coSelectable(const AnalysisContext& ctx, statechart::TransitionId a,
                                statechart::TransitionId b);

void runConflictPass(AnalysisContext& ctx);
void runRacePass(AnalysisContext& ctx);
void runReachabilityPass(AnalysisContext& ctx);
void runLintPass(AnalysisContext& ctx);

}  // namespace pscp::analysis
