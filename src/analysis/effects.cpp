#include "analysis/effects.hpp"

#include <cstdlib>

#include "support/diag.hpp"

namespace pscp::analysis {

namespace {

using actionlang::Expr;
using actionlang::ExprKind;
using actionlang::Function;
using actionlang::Program;
using actionlang::Stmt;
using actionlang::StmtKind;

/// Static binding of a callee's formals for one call chain: hardware
/// parameters (event/cond) and aggregates bind to the caller's name;
/// scalars bind to a constant when the actual folds to one.
struct Env {
  std::map<std::string, std::string> names;
  std::map<std::string, std::optional<int64_t>> constants;

  [[nodiscard]] std::string resolve(const std::string& n) const {
    auto it = names.find(n);
    return it == names.end() ? n : it->second;
  }
};

class Walker {
 public:
  Walker(const Program& program, EffectSet* out) : program_(program), out_(out) {}

  void walkCall(const statechart::ActionCall& call) {
    if (actionlang::isIntrinsicName(call.function)) {
      walkLabelIntrinsic(call);
      return;
    }
    const Function* f = program_.findFunction(call.function);
    if (f == nullptr) {
      out_->astComplete = false;  // unknown callee: fall back to code scan
      return;
    }
    Env env;
    std::set<std::string> locals;
    const size_t n = std::min(call.args.size(), f->params.size());
    for (size_t i = 0; i < n; ++i) {
      const auto& p = f->params[i];
      const std::string& actual = call.args[i];
      if (p.type != nullptr && p.type->isScalar()) {
        locals.insert(p.name);
        env.constants[p.name] = labelArgConstant(actual);
        // A global passed by value is read when the routine is entered.
        if (program_.findGlobal(actual) != nullptr)
          out_->globalReads.insert(actual);
      } else {
        env.names[p.name] = actual;
      }
    }
    walkBody(*f, env, locals);
  }

 private:
  /// A label calling an intrinsic directly ("E1/raise(E2)").
  void walkLabelIntrinsic(const statechart::ActionCall& call) {
    const auto arg = [&](size_t i) -> std::string {
      return i < call.args.size() ? call.args[i] : std::string();
    };
    if (call.function == "raise") {
      noteRaise(arg(0));
    } else if (call.function == "set_cond") {
      noteCondWrite(arg(0), labelArgConstant(arg(1)));
    } else if (call.function == "test_cond") {
      out_->condReads.insert(arg(0));
    } else if (call.function == "read_port") {
      out_->portReads.insert(arg(0));
    } else if (call.function == "write_port") {
      notePortWrite(arg(0), labelArgConstant(arg(1)));
    }
  }

  // Effect recorders: inside an unresolved branch (unresolvedDepth_ > 0)
  // the effect may or may not happen at run time, which the conditional
  // sets carry to the checker.
  void noteRaise(const std::string& name) {
    out_->eventsRaised.insert(name);
    if (unresolvedDepth_ > 0) out_->conditionalRaises.insert(name);
  }
  void noteCondWrite(const std::string& name, std::optional<int64_t> value) {
    EffectSet::recordWrite(&out_->condWrites, name, value);
    if (unresolvedDepth_ > 0) out_->conditionalCondWrites.insert(name);
  }
  void notePortWrite(const std::string& name, std::optional<int64_t> value) {
    EffectSet::recordWrite(&out_->portWrites, name, value);
    if (unresolvedDepth_ > 0) out_->conditionalPortWrites.insert(name);
  }

  /// Label arguments are raw strings: decimal literals and enum constants
  /// fold; anything else is data-dependent.
  [[nodiscard]] std::optional<int64_t> labelArgConstant(const std::string& s) const {
    if (s.empty()) return std::nullopt;
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 0);
    if (end != nullptr && *end == '\0') return static_cast<int64_t>(v);
    auto it = program_.enumConstants.find(s);
    if (it != program_.enumConstants.end()) return it->second;
    return std::nullopt;
  }

  /// Names (re)assigned anywhere in `body` — a formal the body overwrites
  /// must not keep its call-site constant.
  static void collectAssigned(const std::vector<actionlang::StmtPtr>& body,
                              std::set<std::string>* out) {
    for (const auto& sp : body) {
      const Stmt& s = *sp;
      if (s.kind == StmtKind::Assign && s.lhs != nullptr &&
          s.lhs->kind == ExprKind::VarRef)
        out->insert(s.lhs->name);
      if (s.kind == StmtKind::VarDecl) out->insert(s.varName);  // shadowing
      collectAssigned(s.body, out);
      collectAssigned(s.elseBody, out);
    }
  }

  void walkBody(const Function& f, Env env, std::set<std::string> locals) {
    if (visiting_.count(f.name) != 0) return;  // typecheck forbids recursion
    visiting_.insert(f.name);
    std::set<std::string> reassigned;
    collectAssigned(f.body, &reassigned);
    for (const std::string& n : reassigned) env.constants.erase(n);
    for (const auto& s : f.body) walkStmt(*s, env, &locals);
    visiting_.erase(f.name);
  }

  void walkStmt(const Stmt& s, const Env& env, std::set<std::string>* locals) {
    switch (s.kind) {
      case StmtKind::Block:
        for (const auto& c : s.body) walkStmt(*c, env, locals);
        break;
      case StmtKind::VarDecl:
        locals->insert(s.varName);
        if (s.expr != nullptr) walkExpr(*s.expr, env, *locals);
        break;
      case StmtKind::Assign: {
        walkExpr(*s.expr, env, *locals);
        walkLvalue(*s.lhs, env, *locals);
        break;
      }
      case StmtKind::If: {
        walkExpr(*s.expr, env, *locals);
        // Path sensitivity: a branch condition that folds under the static
        // call binding selects exactly one arm (dispatchers of the
        // `if (which == MX)` shape bind per call site). A condition that
        // does not fold walks both arms with the arms' effects marked
        // conditional — they depend on run-time data.
        const std::optional<int64_t> cond = constantOf(*s.expr, env);
        const bool unresolved = !cond.has_value();
        if (unresolved) ++unresolvedDepth_;
        if (unresolved || *cond != 0)
          for (const auto& c : s.body) walkStmt(*c, env, locals);
        if (unresolved || *cond == 0)
          for (const auto& c : s.elseBody) walkStmt(*c, env, locals);
        if (unresolved) --unresolvedDepth_;
        break;
      }
      case StmtKind::While: {
        walkExpr(*s.expr, env, *locals);
        const std::optional<int64_t> cond = constantOf(*s.expr, env);
        const bool unresolved = !cond.has_value();
        if (unresolved) ++unresolvedDepth_;
        if (unresolved || *cond != 0)
          for (const auto& c : s.body) walkStmt(*c, env, locals);
        if (unresolved) --unresolvedDepth_;
        break;
      }
      case StmtKind::Return:
        if (s.expr != nullptr) walkExpr(*s.expr, env, *locals);
        break;
      case StmtKind::ExprStmt:
        walkExpr(*s.expr, env, *locals);
        break;
    }
  }

  /// Root variable of an access chain (base of members/indexing).
  static const Expr* lvalueRoot(const Expr& e) {
    const Expr* at = &e;
    while ((at->kind == ExprKind::Member || at->kind == ExprKind::Index) &&
           !at->children.empty())
      at = at->children[0].get();
    return at->kind == ExprKind::VarRef ? at : nullptr;
  }

  /// Resource name of a global access: "base[k]" when the subscript on the
  /// root array folds to a constant under the binding, else the bare base
  /// (meaning "some element" — collides with every element).
  [[nodiscard]] std::string accessResource(const Expr& access, const std::string& base,
                                           const Env& env) const {
    const Expr* at = &access;
    while ((at->kind == ExprKind::Member || at->kind == ExprKind::Index) &&
           !at->children.empty()) {
      const Expr& child = *at->children[0];
      if (at->kind == ExprKind::Index && child.kind == ExprKind::VarRef &&
          at->children.size() > 1) {
        const auto idx = constantOf(*at->children[1], env);
        if (idx.has_value())
          return strfmt("%s[%lld]", base.c_str(), static_cast<long long>(*idx));
        return base;
      }
      at = &child;
    }
    return base;
  }

  /// Visit the subscript expressions of an access chain (they are reads);
  /// the chain's own base VarRef is handled by the caller.
  void walkAccessIndices(const Expr& e, const Env& env,
                         const std::set<std::string>& locals) {
    if (e.kind == ExprKind::Index && e.children.size() > 1)
      walkExpr(*e.children[1], env, locals);
    if ((e.kind == ExprKind::Member || e.kind == ExprKind::Index) &&
        !e.children.empty() && e.children[0]->kind != ExprKind::VarRef)
      walkAccessIndices(*e.children[0], env, locals);
  }

  void walkLvalue(const Expr& lhs, const Env& env, const std::set<std::string>& locals) {
    walkAccessIndices(lhs, env, locals);
    const Expr* root = lvalueRoot(lhs);
    if (root == nullptr) return;
    if (locals.count(root->name) != 0 && env.names.count(root->name) == 0) return;
    const std::string resolved = env.resolve(root->name);
    if (program_.findGlobal(resolved) != nullptr)
      out_->globalWrites.insert(accessResource(lhs, resolved, env));
  }

  /// Constant value of `e` under the call chain's static binding. Goes
  /// beyond the type checker's folds: formals bound to constant actuals
  /// fold too, which is what makes `if (which == MX)` dispatchers
  /// path-sensitive per call site.
  [[nodiscard]] std::optional<int64_t> constantOf(const Expr& e, const Env& env) const {
    if (e.constant.has_value()) return e.constant;
    switch (e.kind) {
      case ExprKind::IntLit:
        return e.value;
      case ExprKind::VarRef: {
        auto it = env.constants.find(e.name);
        if (it != env.constants.end()) return it->second;
        auto ec = program_.enumConstants.find(e.name);
        if (ec != program_.enumConstants.end()) return ec->second;
        return std::nullopt;
      }
      case ExprKind::Unary: {
        if (e.children.empty()) return std::nullopt;
        const auto v = constantOf(*e.children[0], env);
        if (!v.has_value()) return std::nullopt;
        switch (e.unOp) {
          case actionlang::UnOp::Neg: return -*v;
          case actionlang::UnOp::BitNot: return ~*v;
          case actionlang::UnOp::LogNot: return *v == 0 ? 1 : 0;
        }
        return std::nullopt;
      }
      case ExprKind::Binary: {
        if (e.children.size() < 2) return std::nullopt;
        const auto a = constantOf(*e.children[0], env);
        // Short-circuit forms first: one decided side may suffice.
        if (e.binOp == actionlang::BinOp::LogAnd && a.has_value() && *a == 0) return 0;
        if (e.binOp == actionlang::BinOp::LogOr && a.has_value() && *a != 0) return 1;
        const auto b = constantOf(*e.children[1], env);
        if (!a.has_value() || !b.has_value()) return std::nullopt;
        switch (e.binOp) {
          case actionlang::BinOp::Add: return *a + *b;
          case actionlang::BinOp::Sub: return *a - *b;
          case actionlang::BinOp::Mul: return *a * *b;
          case actionlang::BinOp::Div: return *b == 0 ? std::optional<int64_t>{} : *a / *b;
          case actionlang::BinOp::Mod: return *b == 0 ? std::optional<int64_t>{} : *a % *b;
          case actionlang::BinOp::And: return *a & *b;
          case actionlang::BinOp::Or: return *a | *b;
          case actionlang::BinOp::Xor: return *a ^ *b;
          case actionlang::BinOp::Shl: return *a << (*b & 63);
          case actionlang::BinOp::Shr: return *a >> (*b & 63);
          case actionlang::BinOp::Eq: return *a == *b ? 1 : 0;
          case actionlang::BinOp::Ne: return *a != *b ? 1 : 0;
          case actionlang::BinOp::Lt: return *a < *b ? 1 : 0;
          case actionlang::BinOp::Le: return *a <= *b ? 1 : 0;
          case actionlang::BinOp::Gt: return *a > *b ? 1 : 0;
          case actionlang::BinOp::Ge: return *a >= *b ? 1 : 0;
          case actionlang::BinOp::LogAnd: return (*a != 0 && *b != 0) ? 1 : 0;
          case actionlang::BinOp::LogOr: return (*a != 0 || *b != 0) ? 1 : 0;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  /// The hardware name an event/cond argument denotes, resolved through
  /// the formal->actual binding.
  [[nodiscard]] std::string hardwareArg(const Expr& e, const Env& env) const {
    if (e.kind != ExprKind::VarRef) return {};
    return env.resolve(e.name);
  }

  void walkExpr(const Expr& e, const Env& env, const std::set<std::string>& locals) {
    switch (e.kind) {
      case ExprKind::VarRef: {
        if (locals.count(e.name) != 0) return;
        const std::string resolved = env.resolve(e.name);
        if (program_.findGlobal(resolved) != nullptr)
          out_->globalReads.insert(resolved);
        return;
      }
      case ExprKind::Member:
      case ExprKind::Index: {
        walkAccessIndices(e, env, locals);
        const Expr* root = lvalueRoot(e);
        if (root == nullptr) {
          if (!e.children.empty()) walkExpr(*e.children[0], env, locals);
          return;
        }
        if (locals.count(root->name) != 0 && env.names.count(root->name) == 0) return;
        const std::string resolved = env.resolve(root->name);
        if (program_.findGlobal(resolved) != nullptr)
          out_->globalReads.insert(accessResource(e, resolved, env));
        return;
      }
      case ExprKind::Call: {
        walkCallExpr(e, env, locals);
        return;
      }
      default:
        for (const auto& c : e.children) walkExpr(*c, env, locals);
        return;
    }
  }

  void walkCallExpr(const Expr& e, const Env& env, const std::set<std::string>& locals) {
    const std::string& callee = e.name;
    const auto arg = [&](size_t i) -> const Expr* {
      return i < e.children.size() ? e.children[i].get() : nullptr;
    };
    if (actionlang::isIntrinsicName(callee)) {
      if (callee == "raise") {
        if (const Expr* a = arg(0)) noteRaise(hardwareArg(*a, env));
      } else if (callee == "set_cond") {
        const Expr* c = arg(0);
        const Expr* v = arg(1);
        if (c != nullptr && v != nullptr) {
          noteCondWrite(hardwareArg(*c, env), constantOf(*v, env));
          walkExpr(*v, env, locals);
        }
      } else if (callee == "test_cond") {
        if (const Expr* a = arg(0)) out_->condReads.insert(hardwareArg(*a, env));
      } else if (callee == "read_port") {
        if (const Expr* a = arg(0)) out_->portReads.insert(hardwareArg(*a, env));
      } else if (callee == "write_port") {
        const Expr* p = arg(0);
        const Expr* v = arg(1);
        if (p != nullptr && v != nullptr) {
          notePortWrite(hardwareArg(*p, env), constantOf(*v, env));
          walkExpr(*v, env, locals);
        }
      }
      // in_state reads the CR state part only — not a hazard surface.
      return;
    }
    const Function* f = program_.findFunction(callee);
    if (f == nullptr) return;
    Env inner;
    std::set<std::string> innerLocals;
    const size_t n = std::min(e.children.size(), f->params.size());
    for (size_t i = 0; i < n; ++i) {
      const auto& p = f->params[i];
      const Expr& actual = *e.children[i];
      if (p.type != nullptr && p.type->isScalar()) {
        innerLocals.insert(p.name);
        inner.constants[p.name] = constantOf(actual, env);
        walkExpr(actual, env, locals);  // evaluating the actual is a read
      } else if (actual.kind == ExprKind::VarRef) {
        inner.names[p.name] = env.resolve(actual.name);
      }
    }
    walkBody(*f, inner, innerLocals);
  }

  const Program& program_;
  EffectSet* out_;
  std::set<std::string> visiting_;
  int unresolvedDepth_ = 0;  ///< nesting of branches that did not fold
};

}  // namespace

void EffectSet::recordWrite(std::map<std::string, std::optional<int64_t>>* map,
                            const std::string& name, std::optional<int64_t> value) {
  auto [it, inserted] = map->emplace(name, value);
  if (!inserted && it->second != value) it->second = std::nullopt;
}

bool EffectSet::exact() const {
  if (!astComplete) return false;
  if (!conditionalRaises.empty() || !conditionalCondWrites.empty() ||
      !conditionalPortWrites.empty())
    return false;
  for (const auto& [name, value] : condWrites)
    if (!value.has_value()) return false;
  return true;
}

EffectSet transitionEffects(const statechart::Transition& t,
                            const actionlang::Program& program) {
  EffectSet out;
  Walker walker(program, &out);
  for (const statechart::ActionCall& call : t.label.actions) walker.walkCall(call);
  return out;
}

ReverseBinding makeReverse(const compiler::HardwareBinding& binding) {
  ReverseBinding r;
  for (const auto& [name, bit] : binding.eventIndex) r.eventByBit[bit] = name;
  for (const auto& [name, bit] : binding.conditionIndex) r.conditionByBit[bit] = name;
  for (const auto& [name, addr] : binding.portAddress) r.portByAddress[addr] = name;
  return r;
}

void augmentFromRoutine(const tep::AsmProgram& program, const std::string& routine,
                        const ReverseBinding& names, EffectSet* effects,
                        std::vector<BadJump>* badJumps) {
  auto it = program.routines.find(routine);
  if (it == program.routines.end()) return;

  const int codeSize = static_cast<int>(program.code.size());
  std::vector<bool> visited(program.code.size(), false);
  std::vector<int> work{it->second};

  const auto lookup = [](const std::map<int, std::string>& m, int key) -> std::string {
    auto found = m.find(key);
    return found == m.end() ? strfmt("#%d", key) : found->second;
  };

  while (!work.empty()) {
    int pc = work.back();
    work.pop_back();
    while (pc >= 0 && pc < codeSize && !visited[static_cast<size_t>(pc)]) {
      visited[static_cast<size_t>(pc)] = true;
      const tep::Instr& instr = program.code[static_cast<size_t>(pc)];
      switch (instr.op) {
        // The scan is branch-blind (it visits both sides of every jump),
        // so anything it contributes that the AST walk did not already
        // prove definite is recorded as conditional: it may execute.
        case tep::Opcode::EvSet:
          if (effects != nullptr) {
            const std::string name = lookup(names.eventByBit, instr.operand);
            if (effects->eventsRaised.insert(name).second)
              effects->conditionalRaises.insert(name);
          }
          break;
        case tep::Opcode::CSet:
        case tep::Opcode::CClr:
          if (effects != nullptr) {
            const std::string name = lookup(names.conditionByBit, instr.operand);
            if (effects->condWrites.count(name) == 0)
              effects->conditionalCondWrites.insert(name);
            EffectSet::recordWrite(&effects->condWrites, name,
                                   instr.op == tep::Opcode::CSet ? 1 : 0);
          }
          break;
        case tep::Opcode::CTst:
          if (effects != nullptr)
            effects->condReads.insert(lookup(names.conditionByBit, instr.operand));
          break;
        case tep::Opcode::Inp:
          if (effects != nullptr)
            effects->portReads.insert(lookup(names.portByAddress, instr.operand));
          break;
        case tep::Opcode::Outp:
          // The written value lives in ACC. Keep the AST-derived constant if
          // the port is already known; only record the write's existence.
          if (effects != nullptr) {
            const std::string name = lookup(names.portByAddress, instr.operand);
            if (effects->portWrites.emplace(name, std::nullopt).second)
              effects->conditionalPortWrites.insert(name);
          }
          break;
        case tep::Opcode::Jmp:
        case tep::Opcode::Jz:
        case tep::Opcode::Jnz:
        case tep::Opcode::Jn:
        case tep::Opcode::Jc:
        case tep::Opcode::Call: {
          const int32_t target = instr.operand;
          if (target < 0 || target >= codeSize) {
            if (badJumps != nullptr) badJumps->push_back(BadJump{routine, pc, target});
          } else {
            work.push_back(target);
          }
          if (instr.op == tep::Opcode::Jmp) pc = -1;  // no fall-through
          break;
        }
        case tep::Opcode::Tret:
        case tep::Opcode::Ret:
          pc = -1;  // end of this path
          break;
        default:
          break;
      }
      if (pc >= 0) ++pc;
    }
  }
}

}  // namespace pscp::analysis
