// Chart-level static analyzer (pscp_lint's engine).
//
// Four passes over the parsed chart, its synthesized SLA, and (when
// attached) the assembled TEP program:
//
//   1. conflicts  — pairs of transitions the SLA can select together whose
//                   exit sets overlap: the scheduler resolves them silently
//                   by structural priority / declaration order, so the
//                   nondeterminism never surfaces at runtime (PSCP-CF00x).
//   2. races      — pairs that can *fire concurrently on different TEPs*
//                   with intersecting write sets over shared machine state:
//                   ports, condition bits, external-RAM globals
//                   (PSCP-WR00x).
//   3. reachability — explicit BFS over the configuration graph with free
//                   event/condition valuations: unreachable states, dead
//                   transitions, constant-false triggers (PSCP-RE00x).
//   4. lints      — action-language and microcode checks: truncating
//                   assignments, uninitialized locals, control transfers
//                   outside program memory, unreferenced ports
//                   (PSCP-AL00x).
//
// Soundness assumptions are documented per-pass in DESIGN.md §11; the
// short version is that conflicts/reachability over-approximate behaviour
// (no false "unreachable"/missed conflicts within the explored bound) and
// the race pass under-reports only where the machine serializes access
// (condition caches, exclusion groups).
#pragma once

#include "actionlang/ast.hpp"
#include "analysis/finding.hpp"
#include "compiler/codegen.hpp"
#include "statechart/chart.hpp"

namespace pscp::analysis {

struct AnalyzerOptions {
  bool conflicts = true;
  bool races = true;
  bool reachability = true;
  bool lints = true;
  /// Reachability explores at most this many configurations, then reports
  /// PSCP-RE000 and withholds unreachable/dead findings (they would be
  /// unsound on a truncated exploration).
  int maxConfigurations = 1 << 16;
  /// Triggers/guards referencing more than this many names are assumed
  /// satisfiable instead of enumerated.
  int maxGuardVars = 16;
};

class Analyzer {
 public:
  /// `chart` must be validated; `program` must be type-checked. Both must
  /// outlive the analyzer.
  Analyzer(const statechart::Chart& chart, const actionlang::Program& program,
           AnalyzerOptions options = {});

  /// Attach the compiled application: enables the microcode-level checks
  /// (jump-range lint, code-derived effect augmentation). `app` must
  /// outlive the analyzer.
  void attachCompiled(const compiler::CompiledApp& app);

  [[nodiscard]] AnalysisResult run();

 private:
  const statechart::Chart& chart_;
  const actionlang::Program& program_;
  AnalyzerOptions options_;
  const compiler::CompiledApp* compiled_ = nullptr;
};

}  // namespace pscp::analysis
