// Structured diagnostics for the chart-level static analyzer.
//
// Every pass reports through this model: a Finding carries a stable
// diagnostic code (the contract pscp_lint's CI gate and the tests key on),
// a severity, a primary source location (threaded from the statechart and
// action-language parsers), and optional related locations ("the other
// transition of the pair"). AnalysisResult aggregates findings and renders
// the two report formats: compiler-style text and the pscp-lint-v1 JSON
// document (support/json).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace pscp::analysis {

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char* severityName(Severity s);

// Stable diagnostic codes. CF = conflict, WR = write-race, RE =
// reachability, AL = action-language/code lint.
inline constexpr const char* kCodeConflict = "PSCP-CF001";        ///< nondeterministic conflict
inline constexpr const char* kCodeMaskedConflict = "PSCP-CF002";  ///< priority-resolved conflict
inline constexpr const char* kCodeWriteWrite = "PSCP-WR001";      ///< parallel write-write race
inline constexpr const char* kCodeReadWrite = "PSCP-WR002";       ///< parallel read-write hazard
inline constexpr const char* kCodeReachTruncated = "PSCP-RE000";  ///< BFS hit the config cap
inline constexpr const char* kCodeUnreachableState = "PSCP-RE001";
inline constexpr const char* kCodeDeadTransition = "PSCP-RE002";
inline constexpr const char* kCodeConstFalseGuard = "PSCP-RE003";
inline constexpr const char* kCodeTruncatingAssign = "PSCP-AL001";
inline constexpr const char* kCodeUninitializedRead = "PSCP-AL002";
inline constexpr const char* kCodeJumpOutOfRange = "PSCP-AL003";
inline constexpr const char* kCodeUnreferencedPort = "PSCP-AL004";
// MC = bounded model checker (src/analysis/check). MC000 extends the
// RE000 truncation contract: when it is present, every undecided property
// is Unknown rather than Pass — the bound, not the property, decided.
inline constexpr const char* kCodeCheckTruncated = "PSCP-MC000";  ///< search hit a bound
inline constexpr const char* kCodeCheckSafety = "PSCP-MC001";     ///< invariant/never violated
inline constexpr const char* kCodeCheckLeadsTo = "PSCP-MC002";    ///< bounded response violated
inline constexpr const char* kCodeCheckPulse = "PSCP-MC003";      ///< pulse window violated
inline constexpr const char* kCodeCheckSpurious = "PSCP-MC004";   ///< abstract cex refuted concretely
inline constexpr const char* kCodeCheckUnknown = "PSCP-MC005";    ///< undecided within the bound

struct Finding {
  std::string code;     ///< one of the kCode* constants
  Severity severity = Severity::Warning;
  std::string message;  ///< one line, no trailing newline
  SourceLoc loc;        ///< primary location (unknown() when synthetic)
  /// Machine-readable subject for race findings: the port/condition/global
  /// name. pscp_lint's runtime cross-check matches observed collisions
  /// against this rather than parsing messages.
  std::string resource;
  /// Related locations, rendered as indented notes under the finding.
  std::vector<std::pair<SourceLoc, std::string>> notes;
};

struct AnalysisResult {
  std::string chartName;
  std::vector<Finding> findings;

  /// Content hash of the compiled ChartImage the verdicts refer to
  /// (obs::journal::imageContentHash) — the same value every journal
  /// records, so lint/check findings are traceable to the exact compiled
  /// image. 0 when the chart was not compiled (AST-only analysis).
  uint64_t imageHash = 0;

  // Reachability-pass statistics (also serialized into the JSON report).
  int configurationsExplored = 0;
  bool reachabilityComplete = true;

  [[nodiscard]] int countAt(Severity s) const;
  [[nodiscard]] int errorCount() const { return countAt(Severity::Error); }
  [[nodiscard]] int warningCount() const { return countAt(Severity::Warning); }
  [[nodiscard]] bool hasCode(const std::string& code) const;
  [[nodiscard]] const Finding* findCode(const std::string& code) const;

  /// Compiler-style text report: one "file:line:col: severity: message
  /// [CODE]" line per finding (notes indented below), then a summary line.
  [[nodiscard]] std::string renderText() const;

  /// The pscp-lint-v1 JSON document.
  [[nodiscard]] std::string renderJson(int indent = 2) const;
};

}  // namespace pscp::analysis
