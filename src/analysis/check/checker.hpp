// Bounded model checker over packed configurations, with journal-
// replayable counterexamples.
//
// The checker explores the event-labelled transition graph of a compiled
// chart: nodes are (interpreter state, temporal-monitor words), edges are
// external-event sets drawn from the spec's environment alphabet. The
// control step is the reference interpreter (configuration update only);
// transition *effects* — condition writes, internal raises, port pulses —
// come from the static effect summaries of src/analysis/effects.cpp,
// augmented from the assembled TEP routines when a compiled image is
// attached. Effects the summary cannot prove definite (EffectSet::
// conditionalRaises and friends, or data-dependent write values) become
// explicit branch points, so the abstract graph over-approximates the
// concrete machine: a Pass over a complete search is sound, and every Fail
// carries a concrete candidate trace that is then *confirmed* by replaying
// it on the real PscpMachine (interpreter tier, then the native tier).
//
// Per expansion the checker cross-checks the compiled SLA against the
// interpreter: the packed CR of the pre-step state (sampled events |
// conditions | state-field codes) is decoded by sla::Sla::select and the
// selection must equal Interpreter::enabledTransitions — the same
// mask-product the hardware runs, asserted on every explored node.
//
// Every confirmed violation is also lowered to a pscp-journal-v1 journal:
// a single-instance fleet records the counterexample's event script with
// per-epoch CR-digest checkpoints, and the journal is verified through the
// replay engine on the interpreter and (when the backend exists) the JIT
// tier. The artifact a finding points at is therefore independently
// re-executable by `pscp_replay verify`.
//
// Bound semantics extend the RE000 contract of the reachability pass:
// whenever any bound truncated the search (state cap, depth cap, event-set
// cap, branch-fan cap) the result carries PSCP-MC000 and every property
// the search did not refute is reported Unknown (PSCP-MC005), never Pass —
// the bound decided, not the property.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/check/spec.hpp"
#include "analysis/finding.hpp"
#include "obs/journal/journal.hpp"
#include "pscp/machine.hpp"

namespace pscp::analysis::check {

struct CheckOptions {
  /// Distinct (configuration, monitors) nodes explored before truncation.
  int maxStates = 1 << 14;
  /// BFS depth (= counterexample length) cap, in configuration cycles.
  int maxDepth = 1024;
  /// Alphabet size up to which every event subset is an edge label; larger
  /// alphabets fall back to the empty set + singletons (and the result is
  /// marked event-set-incomplete, demoting Pass to Unknown).
  int maxEventSetBits = 5;
  /// Cap on uncertain-effect branch combinations per expansion.
  int maxChoiceFan = 32;
  /// Replay each candidate counterexample on a concrete PscpMachine
  /// (interpreter tier, then native tier) before reporting it. Candidates
  /// the concrete machine refutes are reported PSCP-MC004 / Unknown.
  bool confirm = true;
  /// Lower each confirmed counterexample to a pscp-journal-v1 journal.
  bool buildJournals = true;
  /// Verify each built journal through the replay engine (interpreter).
  bool verifyReplay = true;
  /// Also verify under the native tier (skipped, not failed, when the JIT
  /// backend is unavailable on this build/host).
  bool verifyJit = true;
};

enum class PropStatus { Pass, Fail, Unknown };
[[nodiscard]] const char* propStatusName(PropStatus s);

/// A violation witness: the external-event script that drives the machine
/// from the initial configuration into the violation, plus everything the
/// confirmation/replay pipeline established about it.
struct Counterexample {
  /// External events injected per configuration cycle (possibly empty
  /// sets). Empty vector = the initial configuration already violates.
  std::vector<std::vector<std::string>> cycles;
  /// Cycle index at which the violation is observed; -1 = initial state.
  int violationCycle = -1;
  /// Trace re-ran on a concrete PscpMachine and reproduced the violation.
  bool confirmed = false;
  /// Same, with the native tier forced on (kAlways).
  bool jitConfirmed = false;
  /// jitConfirmed is meaningful only when the backend exists.
  bool jitChecked = false;
  /// The machine's packed CR after the trace (from the confirming run) —
  /// what a faithful journal replay must end in.
  std::vector<uint64_t> finalCrWords;

  bool journalBuilt = false;
  obs::journal::Journal journal;  ///< pscp-journal-v1 witness
  /// Journal replay-verified (digest checkpoints + final CR) per tier.
  bool interpVerified = false;
  bool jitVerified = false;
};

struct PropertyReport {
  std::string name;
  PropKind kind = PropKind::Invariant;
  PropStatus status = PropStatus::Unknown;
  std::string detail;  ///< one line: why this status
  /// True when the abstract model produced a candidate the concrete
  /// machine refuted (the candidate lived only in an uncertainty branch).
  bool spurious = false;
  Counterexample cex;  ///< populated when status == Fail (or spurious)
};

struct CheckResult {
  std::string chartName;
  std::string specFile;
  /// Content hash of the compiled image the verdicts (and journals) bind
  /// to; 0 in model-only mode (no image attached).
  uint64_t imageHash = 0;

  int statesExplored = 0;
  bool complete = true;           ///< neither state nor depth bound tripped
  bool eventSetsComplete = true;  ///< full event powerset explored
  bool choicesComplete = true;    ///< no expansion hit maxChoiceFan
  /// No uncertainty branches were ever taken: the effect summaries were
  /// exact and the abstract graph IS the concrete reachable graph.
  bool modelExact = true;
  /// Every fired transition's effect summary covered its routine (AST walk
  /// complete, or augmented from the assembled code). When false a Pass
  /// would be unsound and is demoted to Unknown.
  bool effectsSound = true;

  std::vector<PropertyReport> properties;
  std::vector<Finding> findings;  ///< MC0xx, ready to merge into lint output

  [[nodiscard]] int failCount() const;
  [[nodiscard]] int unknownCount() const;
  /// True when a Pass here means "proved within the bound" (nothing was
  /// truncated and the model over-approximates soundly).
  [[nodiscard]] bool passIsSound() const {
    return complete && eventSetsComplete && choicesComplete && effectsSound;
  }

  /// Compiler-style text report (one line per property + findings).
  [[nodiscard]] std::string renderText() const;
  /// The pscp-check-v1 JSON document; each failed property embeds its
  /// witness journal as a pscp-journal-v1 object.
  [[nodiscard]] std::string renderJson(int indent = 2) const;
};

/// Run the bounded check. `image` may be null (model-only mode: no SLA
/// cross-check, no routine-augmented effects, no confirmation, no
/// journals); when present, `chart`/`actions` must be the ones the image
/// was built from. Spec must already be bound (bindSpec).
[[nodiscard]] CheckResult runBoundedCheck(
    const statechart::Chart& chart, const actionlang::Program& actions,
    const SpecFile& spec, std::shared_ptr<const machine::ChartImage> image,
    const CheckOptions& options = {});

}  // namespace pscp::analysis::check
