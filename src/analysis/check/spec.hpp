// Property specification language for the bounded model checker.
//
// A spec file attaches declarative properties to a chart: safety
// invariants over states/conditions/events ("state A unreachable while
// condition C") and bounded temporal queries ("port X never pulses twice
// within N cycles", "REQ is served within N cycles"). The checker
// (checker.hpp) explores the chart's event-labelled configuration graph
// and decides each property within a bound.
//
// Grammar (comments run `#` or `//` to end of line):
//
//   spec       := { decl }
//   decl       := "spec" IDENT ";"                      chart binding
//              |  "env" "events" IDENT {"," IDENT} ";"  environment alphabet
//              |  "bound" "states" INT ";"              search bounds
//              |  "bound" "depth" INT ";"
//              |  "expect" ("pass"|"violations") ";"    CI gate polarity
//              |  property
//   property   := ("invariant"|"always") IDENT ":" expr ";"
//              |  "never"   IDENT ":" expr ";"
//              |  "leadsto" IDENT ":" expr "=>" expr "within" INT ";"
//              |  "pulse"   IDENT ":" "port" IDENT "max" INT "within" INT ";"
//   expr       := or [ "->" expr ]                      (right associative)
//   or         := and { ("||"|"or") and }
//   and        := unary { ("&&"|"and") unary }
//   unary      := ("!"|"not") unary | primary
//   primary    := "(" expr ")" | "true" | "false"
//              |  "state" IDENT | "cond" IDENT | "event" IDENT
//
// Atom semantics — every expression is evaluated over one configuration
// cycle's observables: `state S` / `cond C` read the *post-cycle*
// configuration and condition valuation (what the CR holds after
// write-back), `event E` is true when E was sampled into the CR at the
// start of that cycle (external or internal).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "statechart/chart.hpp"
#include "support/diag.hpp"

namespace pscp::analysis::check {

/// Boolean observation over one configuration cycle (see header comment).
struct PropExpr {
  enum class Kind { True, False, State, Cond, Event, Not, And, Or, Implies };
  Kind kind = Kind::True;
  std::string name;  ///< State/Cond/Event atoms
  /// Resolved by bindSpec for State atoms (kNoState until bound).
  statechart::StateId stateId = statechart::kNoState;
  std::vector<PropExpr> kids;
  SourceLoc loc;

  /// Source-shaped rendering ("!(state Bad && cond ARMED)").
  [[nodiscard]] std::string str() const;
};

enum class PropKind {
  Invariant,  ///< expr must hold in every reachable cycle ("always")
  Never,      ///< expr must hold in no reachable cycle
  LeadsTo,    ///< whenever trigger holds, goal must hold within N cycles
  Pulse,      ///< port pulses at most K times in any N-cycle window
};

[[nodiscard]] const char* propKindName(PropKind k);

struct Property {
  std::string name;
  PropKind kind = PropKind::Invariant;
  SourceLoc loc;
  PropExpr expr;      ///< invariant/never body; leadsto trigger
  PropExpr goal;      ///< leadsto only
  int within = 0;     ///< leadsto deadline / pulse window, in cycles
  std::string port;   ///< pulse only: watched port name
  int maxPulses = 0;  ///< pulse only: allowed writes per window

  /// True when the property's runtime monitor carries state across cycles
  /// (leadsto deadline countdown, pulse shift register).
  [[nodiscard]] bool temporal() const {
    return kind == PropKind::LeadsTo || kind == PropKind::Pulse;
  }
  /// One-line source-shaped description for findings and reports.
  [[nodiscard]] std::string describe() const;
};

struct SpecFile {
  std::string file;                    ///< logical name for diagnostics
  std::string chartName;               ///< `spec NAME;` — empty = any chart
  std::vector<std::string> envEvents;  ///< `env events ...;` alphabet
  std::optional<int> boundStates;      ///< `bound states N;`
  std::optional<int> boundDepth;       ///< `bound depth N;`
  /// `expect violations;` — the spec is a seeded-violation scenario: the
  /// CI gate passes when the checker *finds* (and replay-verifies) a
  /// violation, and fails when everything passes. Default: expect pass.
  bool expectViolations = false;
  std::vector<Property> properties;
};

/// Parse spec text. Throws pscp::Error (with a SourceLoc) on syntax
/// errors; names are not resolved yet — call bindSpec next.
[[nodiscard]] SpecFile parseSpec(const std::string& text, const std::string& file);

/// Resolve every atom against the chart. Throws pscp::Error on an unknown
/// state/condition/event/port name, a chart-name mismatch, or a property
/// the checker cannot monitor (pulse window outside 1..63, within < 1).
void bindSpec(SpecFile* spec, const statechart::Chart& chart);

}  // namespace pscp::analysis::check
