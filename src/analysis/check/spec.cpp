#include "analysis/check/spec.hpp"

#include <cctype>

namespace pscp::analysis::check {
namespace {

// ---------------------------------------------------------------- lexer

enum class TokKind { Ident, Int, Punct, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  int64_t value = 0;  // Int only
  SourceLoc loc;
};

class Lexer {
 public:
  Lexer(const std::string& text, const std::string& file)
      : text_(text), file_(file) {}

  Token next() {
    skipTrivia();
    Token tok;
    tok.loc = here();
    if (pos_ >= text_.size()) return tok;  // End
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tok.kind = TokKind::Ident;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        tok.text += advance();
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tok.kind = TokKind::Int;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        tok.text += advance();
      tok.value = std::stoll(tok.text);
      return tok;
    }
    tok.kind = TokKind::Punct;
    // Two-character operators first.
    if (pos_ + 1 < text_.size()) {
      const std::string two = text_.substr(pos_, 2);
      if (two == "&&" || two == "||" || two == "->" || two == "=>") {
        advance();
        advance();
        tok.text = two;
        return tok;
      }
    }
    tok.text = std::string(1, advance());
    return tok;
  }

 private:
  [[nodiscard]] SourceLoc here() const { return SourceLoc{file_, line_, col_}; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skipTrivia() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  const std::string& file_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// --------------------------------------------------------------- parser

class Parser {
 public:
  Parser(const std::string& text, const std::string& file)
      : lexer_(text, file) {
    cur_ = lexer_.next();
  }

  SpecFile parse(const std::string& file) {
    SpecFile spec;
    spec.file = file;
    while (cur_.kind != TokKind::End) parseDecl(&spec);
    return spec;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    failAt(cur_.loc, "spec: %s (at '%s')", msg.c_str(),
           cur_.kind == TokKind::End ? "end of file" : cur_.text.c_str());
  }

  void bump() { cur_ = lexer_.next(); }

  [[nodiscard]] bool atIdent(const char* word) const {
    return cur_.kind == TokKind::Ident && cur_.text == word;
  }

  [[nodiscard]] bool atPunct(const char* p) const {
    return cur_.kind == TokKind::Punct && cur_.text == p;
  }

  bool eatIdent(const char* word) {
    if (!atIdent(word)) return false;
    bump();
    return true;
  }

  bool eatPunct(const char* p) {
    if (!atPunct(p)) return false;
    bump();
    return true;
  }

  std::string expectIdent(const char* what) {
    if (cur_.kind != TokKind::Ident) fail(strfmt("expected %s", what));
    std::string name = cur_.text;
    bump();
    return name;
  }

  int64_t expectInt(const char* what) {
    if (cur_.kind != TokKind::Int) fail(strfmt("expected %s", what));
    const int64_t v = cur_.value;
    bump();
    return v;
  }

  void expectPunct(const char* p) {
    if (!eatPunct(p)) fail(strfmt("expected '%s'", p));
  }

  void parseDecl(SpecFile* spec) {
    if (eatIdent("spec")) {
      spec->chartName = expectIdent("chart name after 'spec'");
      expectPunct(";");
      return;
    }
    if (atIdent("env")) {
      bump();
      if (!eatIdent("events")) fail("expected 'events' after 'env'");
      do {
        spec->envEvents.push_back(expectIdent("event name"));
      } while (eatPunct(","));
      expectPunct(";");
      return;
    }
    if (eatIdent("bound")) {
      if (eatIdent("states")) {
        spec->boundStates = static_cast<int>(expectInt("state bound"));
      } else if (eatIdent("depth")) {
        spec->boundDepth = static_cast<int>(expectInt("depth bound"));
      } else {
        fail("expected 'states' or 'depth' after 'bound'");
      }
      expectPunct(";");
      return;
    }
    if (eatIdent("expect")) {
      if (eatIdent("violations")) {
        spec->expectViolations = true;
      } else if (eatIdent("pass")) {
        spec->expectViolations = false;
      } else {
        fail("expected 'violations' or 'pass' after 'expect'");
      }
      expectPunct(";");
      return;
    }
    parseProperty(spec);
  }

  void parseProperty(SpecFile* spec) {
    Property prop;
    prop.loc = cur_.loc;
    if (eatIdent("invariant") || eatIdent("always")) {
      prop.kind = PropKind::Invariant;
    } else if (eatIdent("never")) {
      prop.kind = PropKind::Never;
    } else if (eatIdent("leadsto")) {
      prop.kind = PropKind::LeadsTo;
    } else if (eatIdent("pulse")) {
      prop.kind = PropKind::Pulse;
    } else {
      fail("expected a declaration (spec/env/bound/expect) or a property "
           "(invariant/always/never/leadsto/pulse)");
    }
    prop.name = expectIdent("property name");
    expectPunct(":");
    switch (prop.kind) {
      case PropKind::Invariant:
      case PropKind::Never:
        prop.expr = parseExpr();
        break;
      case PropKind::LeadsTo:
        prop.expr = parseExpr();
        if (!eatPunct("=>")) fail("expected '=>' between trigger and goal");
        prop.goal = parseExpr();
        if (!eatIdent("within")) fail("expected 'within' after leadsto goal");
        prop.within = static_cast<int>(expectInt("cycle count"));
        break;
      case PropKind::Pulse:
        if (!eatIdent("port")) fail("expected 'port' after ':'");
        prop.port = expectIdent("port name");
        if (!eatIdent("max")) fail("expected 'max' after port name");
        prop.maxPulses = static_cast<int>(expectInt("pulse count"));
        if (!eatIdent("within")) fail("expected 'within' after pulse count");
        prop.within = static_cast<int>(expectInt("window length"));
        break;
    }
    expectPunct(";");
    spec->properties.push_back(std::move(prop));
  }

  PropExpr parseExpr() {  // implies, right associative
    PropExpr lhs = parseOr();
    if (eatPunct("->")) {
      PropExpr node;
      node.kind = PropExpr::Kind::Implies;
      node.loc = lhs.loc;
      node.kids.push_back(std::move(lhs));
      node.kids.push_back(parseExpr());
      return node;
    }
    return lhs;
  }

  PropExpr parseOr() {
    PropExpr lhs = parseAnd();
    while (atPunct("||") || atIdent("or")) {
      bump();
      PropExpr node;
      node.kind = PropExpr::Kind::Or;
      node.loc = lhs.loc;
      node.kids.push_back(std::move(lhs));
      node.kids.push_back(parseAnd());
      lhs = std::move(node);
    }
    return lhs;
  }

  PropExpr parseAnd() {
    PropExpr lhs = parseUnary();
    while (atPunct("&&") || atIdent("and")) {
      bump();
      PropExpr node;
      node.kind = PropExpr::Kind::And;
      node.loc = lhs.loc;
      node.kids.push_back(std::move(lhs));
      node.kids.push_back(parseUnary());
      lhs = std::move(node);
    }
    return lhs;
  }

  PropExpr parseUnary() {
    if (atPunct("!") || atIdent("not")) {
      const SourceLoc loc = cur_.loc;
      bump();
      PropExpr node;
      node.kind = PropExpr::Kind::Not;
      node.loc = loc;
      node.kids.push_back(parseUnary());
      return node;
    }
    return parsePrimary();
  }

  PropExpr parsePrimary() {
    PropExpr node;
    node.loc = cur_.loc;
    if (eatPunct("(")) {
      node = parseExpr();
      expectPunct(")");
      return node;
    }
    if (eatIdent("true")) {
      node.kind = PropExpr::Kind::True;
      return node;
    }
    if (eatIdent("false")) {
      node.kind = PropExpr::Kind::False;
      return node;
    }
    if (eatIdent("state")) {
      node.kind = PropExpr::Kind::State;
      node.name = expectIdent("state name");
      return node;
    }
    if (eatIdent("cond")) {
      node.kind = PropExpr::Kind::Cond;
      node.name = expectIdent("condition name");
      return node;
    }
    if (eatIdent("event")) {
      node.kind = PropExpr::Kind::Event;
      node.name = expectIdent("event name");
      return node;
    }
    fail("expected an atom ('state'/'cond'/'event' NAME, true, false, or a "
         "parenthesized expression)");
  }

  Lexer lexer_;
  Token cur_;
};

void bindExpr(PropExpr* e, const statechart::Chart& chart,
              const std::string& propName) {
  switch (e->kind) {
    case PropExpr::Kind::State:
      e->stateId = chart.findState(e->name);
      if (e->stateId == statechart::kNoState)
        failAt(e->loc, "spec property '%s': chart '%s' has no state '%s'",
               propName.c_str(), chart.name().c_str(), e->name.c_str());
      break;
    case PropExpr::Kind::Cond:
      if (!chart.hasCondition(e->name))
        failAt(e->loc, "spec property '%s': chart '%s' has no condition '%s'",
               propName.c_str(), chart.name().c_str(), e->name.c_str());
      break;
    case PropExpr::Kind::Event:
      if (!chart.hasEvent(e->name))
        failAt(e->loc, "spec property '%s': chart '%s' has no event '%s'",
               propName.c_str(), chart.name().c_str(), e->name.c_str());
      break;
    default:
      break;
  }
  for (PropExpr& kid : e->kids) bindExpr(&kid, chart, propName);
}

[[nodiscard]] bool needsParens(const PropExpr& parent, const PropExpr& kid) {
  // Parenthesize whenever the child is itself a binary operator of equal or
  // lower precedence; cheap and always unambiguous.
  if (kid.kind != PropExpr::Kind::And && kid.kind != PropExpr::Kind::Or &&
      kid.kind != PropExpr::Kind::Implies)
    return false;
  if (parent.kind == PropExpr::Kind::Not) return true;
  if (parent.kind == PropExpr::Kind::And) return kid.kind != PropExpr::Kind::And;
  if (parent.kind == PropExpr::Kind::Or)
    return kid.kind == PropExpr::Kind::Implies;
  return false;
}

[[nodiscard]] std::string renderKid(const PropExpr& parent, const PropExpr& kid) {
  return needsParens(parent, kid) ? "(" + kid.str() + ")" : kid.str();
}

}  // namespace

std::string PropExpr::str() const {
  switch (kind) {
    case Kind::True: return "true";
    case Kind::False: return "false";
    case Kind::State: return "state " + name;
    case Kind::Cond: return "cond " + name;
    case Kind::Event: return "event " + name;
    case Kind::Not: return "!" + renderKid(*this, kids[0]);
    case Kind::And:
      return renderKid(*this, kids[0]) + " && " + renderKid(*this, kids[1]);
    case Kind::Or:
      return renderKid(*this, kids[0]) + " || " + renderKid(*this, kids[1]);
    case Kind::Implies:
      return renderKid(*this, kids[0]) + " -> " + renderKid(*this, kids[1]);
  }
  return "?";
}

const char* propKindName(PropKind k) {
  switch (k) {
    case PropKind::Invariant: return "invariant";
    case PropKind::Never: return "never";
    case PropKind::LeadsTo: return "leadsto";
    case PropKind::Pulse: return "pulse";
  }
  return "?";
}

std::string Property::describe() const {
  switch (kind) {
    case PropKind::Invariant:
      return strfmt("invariant %s: %s", name.c_str(), expr.str().c_str());
    case PropKind::Never:
      return strfmt("never %s: %s", name.c_str(), expr.str().c_str());
    case PropKind::LeadsTo:
      return strfmt("leadsto %s: %s => %s within %d", name.c_str(),
                    expr.str().c_str(), goal.str().c_str(), within);
    case PropKind::Pulse:
      return strfmt("pulse %s: port %s max %d within %d", name.c_str(),
                    port.c_str(), maxPulses, within);
  }
  return name;
}

SpecFile parseSpec(const std::string& text, const std::string& file) {
  return Parser(text, file).parse(file);
}

void bindSpec(SpecFile* spec, const statechart::Chart& chart) {
  const SourceLoc top{spec->file, 1, 1};
  if (!spec->chartName.empty() && spec->chartName != chart.name())
    failAt(top, "spec is for chart '%s' but got chart '%s'",
           spec->chartName.c_str(), chart.name().c_str());
  for (const std::string& ev : spec->envEvents) {
    if (!chart.hasEvent(ev))
      failAt(top, "spec env event '%s' is not an event of chart '%s'",
             ev.c_str(), chart.name().c_str());
  }
  if (spec->boundStates && *spec->boundStates < 1)
    failAt(top, "bound states must be >= 1");
  if (spec->boundDepth && *spec->boundDepth < 1)
    failAt(top, "bound depth must be >= 1");
  for (Property& prop : spec->properties) {
    bindExpr(&prop.expr, chart, prop.name);
    bindExpr(&prop.goal, chart, prop.name);
    if (prop.kind == PropKind::LeadsTo && prop.within < 1)
      failAt(prop.loc, "leadsto '%s': within must be >= 1 (got %d)",
             prop.name.c_str(), prop.within);
    if (prop.kind == PropKind::Pulse) {
      // The pulse monitor is a 64-bit shift register over the window.
      if (prop.within < 1 || prop.within > 63)
        failAt(prop.loc, "pulse '%s': window must be in [1, 63] (got %d)",
               prop.name.c_str(), prop.within);
      if (prop.maxPulses < 0)
        failAt(prop.loc, "pulse '%s': max must be >= 0", prop.name.c_str());
      if (chart.ports().count(prop.port) == 0)
        failAt(prop.loc, "pulse '%s': chart '%s' has no port '%s'",
               prop.name.c_str(), chart.name().c_str(), prop.port.c_str());
    }
  }
}

}  // namespace pscp::analysis::check
