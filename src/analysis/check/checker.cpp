#include "analysis/check/checker.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <unordered_set>

#include "analysis/effects.hpp"
#include "fleet/fleet.hpp"
#include "obs/journal/replay.hpp"
#include "obs/sink.hpp"
#include "statechart/semantics.hpp"
#include "support/json.hpp"

namespace pscp::analysis::check {
namespace {

using statechart::Chart;
using statechart::InterpreterState;
using statechart::StateId;
using statechart::TransitionId;

// Observable valuation of one configuration cycle, abstract or concrete:
// `state`/`cond` read the post-cycle configuration and condition values,
// `event` reads the set sampled into the CR at that cycle's start.
struct Obs {
  std::function<bool(const PropExpr&)> state;
  std::function<bool(const std::string&)> cond;
  std::function<bool(const std::string&)> event;
};

[[nodiscard]] bool evalExpr(const PropExpr& e, const Obs& obs) {
  switch (e.kind) {
    case PropExpr::Kind::True: return true;
    case PropExpr::Kind::False: return false;
    case PropExpr::Kind::State: return obs.state(e);
    case PropExpr::Kind::Cond: return obs.cond(e.name);
    case PropExpr::Kind::Event: return obs.event(e.name);
    case PropExpr::Kind::Not: return !evalExpr(e.kids[0], obs);
    case PropExpr::Kind::And:
      return evalExpr(e.kids[0], obs) && evalExpr(e.kids[1], obs);
    case PropExpr::Kind::Or:
      return evalExpr(e.kids[0], obs) || evalExpr(e.kids[1], obs);
    case PropExpr::Kind::Implies:
      return !evalExpr(e.kids[0], obs) || evalExpr(e.kids[1], obs);
  }
  return false;
}

[[nodiscard]] bool safetyViolated(const Property& p, const Obs& obs) {
  const bool holds = evalExpr(p.expr, obs);
  return p.kind == PropKind::Invariant ? !holds : holds;
}

// Advance a temporal property's monitor word through one cycle; true when
// this cycle violates. LeadsTo: `w` is the remaining deadline (0 = idle);
// the goal may be met in the trigger cycle itself, so `within N` means
// "goal holds in some cycle of [trigger, trigger+N]". Pulse: `w` is a
// shift register of the last `within` cycles (bit = port written that
// cycle); more than maxPulses marked cycles in the window violates.
[[nodiscard]] bool monitorStep(const Property& p, uint64_t* w, const Obs& obs,
                               bool pulsed) {
  if (p.kind == PropKind::LeadsTo) {
    if (evalExpr(p.goal, obs)) {
      *w = 0;
      return false;
    }
    if (*w > 0) {
      --*w;
      if (*w == 0) return true;
    }
    if (*w == 0 && evalExpr(p.expr, obs)) *w = static_cast<uint64_t>(p.within);
    return false;
  }
  *w = ((*w << 1) | (pulsed ? 1u : 0u)) &
       ((uint64_t{1} << p.within) - 1);
  return std::popcount(*w) > p.maxPulses;
}

/// Captures the exact per-cycle sampled event sets from a concrete run
/// (external + internal + timer events, decoded from the CR image the SLA
/// is about to read).
class SampleSink : public obs::ObsSink {
 public:
  explicit SampleSink(const sla::CrLayout& layout) : layout_(layout) {}

  void onCrSampled(const BitVec& crBits, int64_t time) override {
    (void)time;
    std::set<std::string> s;
    for (const auto& [name, bit] : layout_.eventBits())
      if (crBits.test(bit)) s.insert(name);
    sampled_.push_back(std::move(s));
  }

  [[nodiscard]] const std::vector<std::set<std::string>>& sampled() const {
    return sampled_;
  }

 private:
  const sla::CrLayout& layout_;
  std::vector<std::set<std::string>> sampled_;
};

// One uncertain-effect branch point gathered while applying a fired
// transition's summary. Options: -1 = skip (effect does not fire), else
// the value (conditions) or 1 (raise / pulse happens).
struct PendingOp {
  enum class Kind { Cond, Raise, Pulse };
  Kind kind = Kind::Cond;
  std::string name;
  std::vector<int> options;
};

struct Node {
  InterpreterState interp;
  std::vector<uint64_t> monitors;  ///< one word per temporal property
  int parent = -1;
  int eventSetIndex = -1;  ///< edge label that produced this node
  int depth = 0;
};

class Checker {
 public:
  Checker(const Chart& chart, const actionlang::Program& actions,
          const SpecFile& spec, std::shared_ptr<const machine::ChartImage> image,
          const CheckOptions& options)
      : chart_(chart),
        actions_(actions),
        spec_(spec),
        image_(std::move(image)),
        opt_(options),
        interp_(chart) {
    if (image_) {
      layout_ = &image_->layout();
      sla_ = &image_->sla();
    } else {
      localLayout_ = std::make_unique<sla::CrLayout>(chart_);
      layout_ = localLayout_.get();
    }
    for (const Property& p : spec_.properties)
      if (p.kind == PropKind::Pulse) watchedPorts_.insert(p.port);
    buildEffects();
    buildEventSets();
  }

  CheckResult run();

 private:
  void buildEffects() {
    effects_.resize(chart_.transitions().size());
    std::unique_ptr<ReverseBinding> reverse;
    if (image_)
      reverse = std::make_unique<ReverseBinding>(makeReverse(image_->binding()));
    for (const statechart::Transition& t : chart_.transitions()) {
      EffectSet e = transitionEffects(t, actions_);
      if (image_) {
        const auto& routines = image_->app().transitionRoutine;
        auto it = routines.find(t.id);
        if (it != routines.end())
          augmentFromRoutine(image_->app().program, it->second, *reverse,
                             e.astComplete ? nullptr : &e, nullptr);
      }
      effects_[static_cast<size_t>(t.id)] = std::move(e);
    }
  }

  void buildEventSets() {
    std::vector<std::string> alphabet = spec_.envEvents;
    if (alphabet.empty())
      for (const auto& [name, decl] : chart_.events())
        if (decl.external) alphabet.push_back(name);
    if (alphabet.empty())
      for (const auto& [name, decl] : chart_.events()) alphabet.push_back(name);
    std::sort(alphabet.begin(), alphabet.end());
    alphabet.erase(std::unique(alphabet.begin(), alphabet.end()), alphabet.end());

    const int n = static_cast<int>(alphabet.size());
    if (n <= opt_.maxEventSetBits) {
      for (uint32_t mask = 0; mask < (1u << n); ++mask) {
        std::vector<std::string> set;
        for (int i = 0; i < n; ++i)
          if ((mask >> i) & 1u) set.push_back(alphabet[static_cast<size_t>(i)]);
        eventSets_.push_back(std::move(set));
      }
    } else {
      eventSetsComplete_ = false;
      eventSets_.emplace_back();
      for (const std::string& ev : alphabet) eventSets_.push_back({ev});
    }
  }

  /// Dedup key over (configuration, conditions, pending events, monitor
  /// words) — injective by construction, fixed layout per chart.
  [[nodiscard]] std::string nodeKey(const Node& n) const {
    std::string k;
    k.reserve(2 * n.interp.active.size() + 2 +
              (chart_.conditions().size() + chart_.events().size()) / 8 + 2 +
              8 * n.monitors.size());
    for (StateId s : n.interp.active) {
      k.push_back(static_cast<char>(s & 0xFF));
      k.push_back(static_cast<char>((s >> 8) & 0xFF));
    }
    k.push_back('\xFF');
    k.push_back('\xFF');
    auto packBools = [&k](auto&& names, auto&& test) {
      uint8_t byte = 0;
      int fill = 0;
      for (const auto& [name, decl] : names) {
        (void)decl;
        byte = static_cast<uint8_t>((byte << 1) | (test(name) ? 1 : 0));
        if (++fill == 8) {
          k.push_back(static_cast<char>(byte));
          byte = 0;
          fill = 0;
        }
      }
      if (fill != 0) k.push_back(static_cast<char>(byte));
    };
    packBools(chart_.conditions(), [&](const std::string& name) {
      auto it = n.interp.conditions.find(name);
      return it != n.interp.conditions.end() && it->second;
    });
    packBools(chart_.events(), [&](const std::string& name) {
      return n.interp.pendingEvents.count(name) != 0;
    });
    for (uint64_t w : n.monitors)
      for (int b = 0; b < 8; ++b)
        k.push_back(static_cast<char>((w >> (8 * b)) & 0xFF));
    return k;
  }

  /// The packed CR the hardware would decode for this pre-step state:
  /// sampled event bits, condition bits, state-field codes.
  [[nodiscard]] BitVec packCr(const InterpreterState& s,
                              const std::set<std::string>& sampled) const {
    const sla::CrLayout& L = *layout_;
    BitVec cr(L.totalBits());
    for (const auto& [name, bit] : L.eventBits())
      if (sampled.count(name)) cr.set(bit);
    for (const auto& [name, bit] : L.conditionBits()) {
      auto it = s.conditions.find(name);
      if (it != s.conditions.end() && it->second) cr.set(L.conditionBase() + bit);
    }
    for (StateId st : s.active) {
      if (st == chart_.root()) continue;
      const auto [fieldIndex, code] = L.stateCode(st);
      const sla::StateField& field =
          L.stateFields()[static_cast<size_t>(fieldIndex)];
      for (int i = 0; i < field.width; ++i)
        if ((code >> i) & 1) cr.set(L.stateBase() + field.baseBit + i);
    }
    return cr;
  }

  /// The tentpole's exactness guard: the compiled SLA mask product over
  /// the packed CR must select exactly the interpreter's enabled set.
  /// interp_ must currently hold `s`.
  void crossCheckSla(const InterpreterState& s,
                     const std::set<std::string>& sampled) const {
    if (sla_ == nullptr) return;
    const std::vector<TransitionId> hw = sla_->select(packCr(s, sampled));
    const std::vector<TransitionId> ref = interp_.enabledTransitions(sampled);
    PSCP_ASSERT(hw == ref);
  }

  [[nodiscard]] Obs modelObs(const InterpreterState& s,
                             const std::set<std::string>& sampled) const {
    return Obs{
        [&s](const PropExpr& e) { return s.active.count(e.stateId) != 0; },
        [&s](const std::string& name) {
          auto it = s.conditions.find(name);
          return it != s.conditions.end() && it->second;
        },
        [&sampled](const std::string& name) { return sampled.count(name) != 0; },
    };
  }

  // ---------------------------------------------------------- exploration

  CheckResult run_;
  std::vector<Node> nodes_;
  std::unordered_set<std::string> visited_;
  std::deque<int> queue_;
  std::vector<int> candidate_;  ///< per property: violating node, -1 = none

  [[nodiscard]] bool allDecided() const {
    return std::all_of(candidate_.begin(), candidate_.end(),
                       [](int c) { return c >= 0; });
  }

  void checkCycleOnNode(int nodeIndex, const std::set<std::string>& sampled,
                        const std::set<std::string>& pulsed) {
    Node& n = nodes_[static_cast<size_t>(nodeIndex)];
    const Obs obs = modelObs(n.interp, sampled);
    int monitor = 0;
    for (size_t i = 0; i < spec_.properties.size(); ++i) {
      const Property& p = spec_.properties[i];
      bool violated = false;
      if (p.temporal()) {
        // Monitors advance on every node (the word is part of state
        // identity); violations only matter while the property is open.
        violated = monitorStep(p, &n.monitors[static_cast<size_t>(monitor++)],
                               obs, pulsed.count(p.port) != 0);
      } else {
        violated = safetyViolated(p, obs);
      }
      if (violated && candidate_[i] < 0) candidate_[i] = nodeIndex;
    }
  }

  void expand(int nodeIndex) {
    for (size_t es = 0; es < eventSets_.size(); ++es) {
      const std::vector<std::string>& eventVec = eventSets_[es];
      const std::set<std::string> external(eventVec.begin(), eventVec.end());
      // Re-enter the interpreter at this node (copy: restoreState moves).
      const Node parent = nodes_[static_cast<size_t>(nodeIndex)];
      interp_.restoreState(parent.interp);
      std::set<std::string> sampled = external;
      sampled.insert(parent.interp.pendingEvents.begin(),
                     parent.interp.pendingEvents.end());
      crossCheckSla(parent.interp, sampled);
      const statechart::StepResult sr = interp_.step(external, {});
      const InterpreterState base = interp_.saveState();

      // Gather effect applications in firing order; uncertain ones become
      // branch options.
      std::vector<PendingOp> ops;
      for (TransitionId t : sr.fired) {
        const EffectSet& e = effects_[static_cast<size_t>(t)];
        if (!e.astComplete && !image_) run_.effectsSound = false;
        for (const auto& [name, value] : e.condWrites) {
          PendingOp op{PendingOp::Kind::Cond, name, {}};
          const bool conditional = e.conditionalCondWrites.count(name) != 0;
          if (value.has_value()) {
            const int v = *value != 0 ? 1 : 0;
            op.options = conditional ? std::vector<int>{-1, v}
                                     : std::vector<int>{v};
          } else {
            op.options = conditional ? std::vector<int>{-1, 0, 1}
                                     : std::vector<int>{0, 1};
          }
          ops.push_back(std::move(op));
        }
        for (const std::string& name : e.eventsRaised) {
          PendingOp op{PendingOp::Kind::Raise, name, {}};
          op.options = e.conditionalRaises.count(name) != 0
                           ? std::vector<int>{-1, 1}
                           : std::vector<int>{1};
          ops.push_back(std::move(op));
        }
        for (const auto& [name, value] : e.portWrites) {
          (void)value;  // a pulse is a write; the value does not matter
          if (watchedPorts_.count(name) == 0) continue;
          PendingOp op{PendingOp::Kind::Pulse, name, {}};
          op.options = e.conditionalPortWrites.count(name) != 0
                           ? std::vector<int>{-1, 1}
                           : std::vector<int>{1};
          ops.push_back(std::move(op));
        }
      }

      uint64_t combos = 1;
      for (const PendingOp& op : ops) {
        combos *= op.options.size();
        if (combos > static_cast<uint64_t>(opt_.maxChoiceFan)) break;
      }
      uint64_t limit = combos;
      if (combos > static_cast<uint64_t>(opt_.maxChoiceFan)) {
        limit = static_cast<uint64_t>(opt_.maxChoiceFan);
        run_.choicesComplete = false;
      }
      if (combos > 1) run_.modelExact = false;

      for (uint64_t combo = 0; combo < limit; ++combo) {
        Node succ;
        succ.interp.active = base.active;
        succ.interp.conditions = base.conditions;
        succ.monitors = parent.monitors;
        succ.parent = nodeIndex;
        succ.eventSetIndex = static_cast<int>(es);
        succ.depth = parent.depth + 1;
        std::set<std::string> pulsed;
        uint64_t rem = combo;
        for (const PendingOp& op : ops) {
          const int pick = op.options[rem % op.options.size()];
          rem /= op.options.size();
          if (pick < 0) continue;  // effect does not fire on this branch
          switch (op.kind) {
            case PendingOp::Kind::Cond:
              succ.interp.conditions[op.name] = pick != 0;
              break;
            case PendingOp::Kind::Raise:
              succ.interp.pendingEvents.insert(op.name);
              break;
            case PendingOp::Kind::Pulse:
              pulsed.insert(op.name);
              break;
          }
        }

        const int succIndex = static_cast<int>(nodes_.size());
        nodes_.push_back(std::move(succ));
        // Advance the monitors BEFORE keying: the node's identity is its
        // post-cycle (configuration, monitor-word) pair. Keying the
        // pre-advance words would merge successors back into their parent
        // and cut off every multi-cycle temporal trace.
        checkCycleOnNode(succIndex, sampled, pulsed);
        const std::string key = nodeKey(nodes_[static_cast<size_t>(succIndex)]);
        const bool fresh = visited_.count(key) == 0;
        bool enqueued = false;
        if (fresh) {
          if (static_cast<int>(visited_.size()) >= opt_.maxStates) {
            run_.complete = false;  // same contract as RE000's config cap
          } else {
            visited_.insert(key);
            queue_.push_back(succIndex);
            enqueued = true;
          }
        }
        // Keep the node only when something references it: the BFS queue,
        // or a violation whose witness trace needs the parent chain.
        const bool witnessed =
            std::any_of(candidate_.begin(), candidate_.end(),
                        [succIndex](int c) { return c == succIndex; });
        if (!enqueued && !witnessed) nodes_.pop_back();
        if (allDecided()) return;
      }
    }
  }

  // -------------------------------------------------- witness extraction

  [[nodiscard]] std::vector<std::vector<std::string>> traceTo(int nodeIndex) const {
    std::vector<std::vector<std::string>> cycles;
    for (int n = nodeIndex; n >= 0 && nodes_[static_cast<size_t>(n)].parent >= 0;
         n = nodes_[static_cast<size_t>(n)].parent)
      cycles.push_back(
          eventSets_[static_cast<size_t>(nodes_[static_cast<size_t>(n)].eventSetIndex)]);
    std::reverse(cycles.begin(), cycles.end());
    return cycles;
  }

  /// Replay the counterexample's event script on a concrete PscpMachine
  /// and evaluate the property cycle by cycle. Interpreter mode attaches a
  /// SampleSink and exports the per-cycle sampled event sets + final CR;
  /// JIT mode runs sink-free (a sink pins the machine to the interpreter
  /// tier) and reuses the captured samples — valid because observation is
  /// bit-identity-neutral by the obs contract.
  [[nodiscard]] bool runConcrete(const Property& p, const Counterexample& cex,
                                 tep::jit::JitMode mode,
                                 std::vector<std::set<std::string>>* samples,
                                 std::vector<uint64_t>* finalCrWords) const {
    machine::PscpMachine m(image_);
    m.setJitMode(mode);
    SampleSink sink(*layout_);
    const bool useSink = mode == tep::jit::JitMode::kOff;
    if (useSink) m.setObsOptions(obs::ObsOptions{&sink});

    auto machineObs = [&m](const std::set<std::string>& sampled) {
      return Obs{
          [&m](const PropExpr& e) { return m.isActive(e.name); },
          [&m](const std::string& name) { return m.conditionValue(name); },
          [&sampled](const std::string& name) { return sampled.count(name) != 0; },
      };
    };
    uint64_t w = 0;
    bool violated = false;
    const std::set<std::string> none;
    // Cycle -1: the initial configuration.
    if (p.temporal())
      violated |= monitorStep(p, &w, machineObs(none), false);
    else
      violated |= safetyViolated(p, machineObs(none));

    const int watchedPort =
        p.kind == PropKind::Pulse ? m.portId(p.port) : -1;
    size_t writeCursor = 0;
    for (size_t c = 0; c < cex.cycles.size(); ++c) {
      const std::set<std::string> external(cex.cycles[c].begin(),
                                           cex.cycles[c].end());
      m.configurationCycle(external);
      std::set<std::string> sampled;
      if (useSink) {
        PSCP_ASSERT(sink.sampled().size() == c + 1);
        sampled = sink.sampled()[c];
      } else if (samples != nullptr && c < samples->size()) {
        sampled = (*samples)[c];
      }
      bool pulsed = false;
      const auto& writes = m.portWrites();
      for (; writeCursor < writes.size(); ++writeCursor)
        if (writes[writeCursor].port == watchedPort &&
            writes[writeCursor].configCycle == static_cast<int64_t>(c))
          pulsed = true;
      const Obs obs = machineObs(sampled);
      if (p.temporal())
        violated |= monitorStep(p, &w, obs, pulsed);
      else
        violated |= safetyViolated(p, obs);
      // Keep stepping to the end of the script: the journal replays the
      // whole script, so the comparable final CR is the post-trace one.
    }
    if (useSink && samples != nullptr) *samples = sink.sampled();
    if (finalCrWords != nullptr) {
      finalCrWords->clear();
      const BitVec& cr = m.crBits();
      for (size_t wi = 0; wi < cr.wordCount(); ++wi)
        finalCrWords->push_back(cr.word(wi));
    }
    return violated;
  }

  void buildJournal(const Property& p, Counterexample* cex) const {
    fleet::FleetConfig cfg;
    cfg.workerThreads = 1;
    cfg.journal = true;
    cfg.journalConfig.checkpointInterval = 1;
    cfg.jitMode = tep::jit::JitMode::kOff;
    fleet::Fleet fleet(image_, cfg);
    const fleet::InstanceId id = fleet.spawn();
    for (const std::vector<std::string>& cycle : cex->cycles) {
      for (const std::string& ev : cycle) {
        const bool injected = fleet.inject(id, fleet.eventId(ev));
        PSCP_ASSERT(injected);
      }
      fleet.step(1);
    }
    obs::journal::Journal journal = *fleet.journal();
    journal.setNote(strfmt("counterexample: %s (chart '%s', spec '%s', "
                           "violation at cycle %d)",
                           p.describe().c_str(), chart_.name().c_str(),
                           spec_.file.c_str(), cex->violationCycle));
    cex->journal = std::move(journal);
    cex->journalBuilt = true;
  }

  [[nodiscard]] bool verifyOneReplay(const Counterexample& cex,
                                     tep::jit::JitMode mode) const {
    obs::journal::Replayer replayer(&cex.journal, image_);
    obs::journal::ReplayOptions ro;
    ro.workerThreads = 1;
    ro.jitMode = mode;
    ro.verifyCheckpoints = true;
    ro.captureFinalCr = true;
    const obs::journal::ReplayResult r = replayer.run(ro);
    if (!r.ok || !r.verified) return false;
    // The replayed run must end in exactly the CR the confirming machine
    // ended in — the journal reproduces the violation, not just *a* run.
    if (cex.finalCrWords.empty()) return true;
    if (r.finalCr.size() != 1) return false;
    return r.finalCr[0].words.empty() || r.finalCr[0].words == cex.finalCrWords;
  }

  void confirmAndWitness(const Property& p, PropertyReport* report) {
    if (!image_) return;  // model-only mode: candidate stands unconfirmed
    Counterexample& cex = report->cex;
    std::vector<std::set<std::string>> samples;
    if (opt_.confirm) {
      cex.confirmed = runConcrete(p, cex, tep::jit::JitMode::kOff, &samples,
                                  &cex.finalCrWords);
      if (!cex.confirmed) {
        report->spurious = true;
        report->status = PropStatus::Unknown;
        return;
      }
      cex.jitChecked = tep::jit::jitBackendAvailable();
      if (cex.jitChecked)
        cex.jitConfirmed =
            runConcrete(p, cex, tep::jit::JitMode::kAlways, &samples, nullptr);
    }
    if (opt_.buildJournals) {
      buildJournal(p, &cex);
      if (opt_.verifyReplay) {
        cex.interpVerified = verifyOneReplay(cex, tep::jit::JitMode::kOff);
        if (opt_.verifyJit && tep::jit::jitBackendAvailable())
          cex.jitVerified = verifyOneReplay(cex, tep::jit::JitMode::kAlways);
      }
    }
  }

  // ------------------------------------------------------------- findings

  void emitFindings() {
    if (!run_.complete || !eventSetsComplete_ || !run_.choicesComplete) {
      std::string what;
      if (!run_.complete)
        what = strfmt("state/depth bound (%d states, depth %d)", opt_.maxStates,
                      opt_.maxDepth);
      else if (!eventSetsComplete_)
        what = strfmt("event alphabet wider than %d (singleton sets only)",
                      opt_.maxEventSetBits);
      else
        what = strfmt("uncertainty branch fan over %d", opt_.maxChoiceFan);
      Finding f;
      f.code = kCodeCheckTruncated;
      f.severity = Severity::Note;
      f.message = strfmt(
          "bounded check truncated by %s after %d states; undecided "
          "properties are Unknown, not Pass",
          what.c_str(), run_.statesExplored);
      f.loc = SourceLoc{spec_.file, 0, 0};
      run_.findings.push_back(std::move(f));
    }
    for (const PropertyReport& r : run_.properties) {
      Finding f;
      f.loc = specLocOf(r.name);
      f.resource = r.name;
      if (r.status == PropStatus::Fail) {
        switch (r.kind) {
          case PropKind::Invariant:
          case PropKind::Never: f.code = kCodeCheckSafety; break;
          case PropKind::LeadsTo: f.code = kCodeCheckLeadsTo; break;
          case PropKind::Pulse: f.code = kCodeCheckPulse; break;
        }
        f.severity = Severity::Error;
        f.message = r.detail;
      } else if (r.spurious) {
        f.code = kCodeCheckSpurious;
        f.severity = Severity::Warning;
        f.message = strfmt(
            "property '%s': abstract counterexample refuted by the concrete "
            "machine (an uncertainty branch the routine never takes); "
            "property is Unknown",
            r.name.c_str());
      } else if (r.status == PropStatus::Unknown) {
        f.code = kCodeCheckUnknown;
        f.severity = Severity::Note;
        f.message = strfmt("property '%s' undecided within the bound: %s",
                           r.name.c_str(), r.detail.c_str());
      } else {
        continue;  // Pass: no finding
      }
      run_.findings.push_back(std::move(f));
    }
  }

  [[nodiscard]] SourceLoc specLocOf(const std::string& propName) const {
    for (const Property& p : spec_.properties)
      if (p.name == propName) return p.loc;
    return SourceLoc{spec_.file, 0, 0};
  }

  const Chart& chart_;
  const actionlang::Program& actions_;
  const SpecFile& spec_;
  std::shared_ptr<const machine::ChartImage> image_;
  CheckOptions opt_;
  mutable statechart::Interpreter interp_;
  std::unique_ptr<sla::CrLayout> localLayout_;
  const sla::CrLayout* layout_ = nullptr;
  const sla::Sla* sla_ = nullptr;
  std::vector<EffectSet> effects_;
  std::set<std::string> watchedPorts_;
  std::vector<std::vector<std::string>> eventSets_;
  bool eventSetsComplete_ = true;
  int monitorCount_ = 0;
};

CheckResult Checker::run() {
  run_ = CheckResult{};
  run_.chartName = chart_.name();
  run_.specFile = spec_.file;
  run_.eventSetsComplete = eventSetsComplete_;
  if (image_) run_.imageHash = obs::journal::imageContentHash(*image_);

  monitorCount_ = 0;
  for (const Property& p : spec_.properties)
    if (p.temporal()) ++monitorCount_;

  nodes_.clear();
  visited_.clear();
  queue_.clear();
  candidate_.assign(spec_.properties.size(), -1);

  // Root: the default initial configuration, all conditions false, no
  // pending events, idle monitors. Cycle -1 observables: nothing sampled.
  interp_.reset();
  Node root;
  root.interp = interp_.saveState();
  root.monitors.assign(static_cast<size_t>(monitorCount_), 0);
  nodes_.push_back(std::move(root));
  checkCycleOnNode(0, {}, {});
  visited_.insert(nodeKey(nodes_[0]));  // post-advance, like every node
  queue_.push_back(0);

  while (!queue_.empty() && !allDecided()) {
    const int ni = queue_.front();
    queue_.pop_front();
    if (nodes_[static_cast<size_t>(ni)].depth >= opt_.maxDepth) {
      run_.complete = false;
      continue;
    }
    expand(ni);
  }
  run_.statesExplored = static_cast<int>(visited_.size());
  run_.eventSetsComplete = eventSetsComplete_;

  for (size_t i = 0; i < spec_.properties.size(); ++i) {
    const Property& p = spec_.properties[i];
    PropertyReport report;
    report.name = p.name;
    report.kind = p.kind;
    if (candidate_[i] >= 0) {
      report.status = PropStatus::Fail;
      report.cex.cycles = traceTo(candidate_[i]);
      report.cex.violationCycle =
          static_cast<int>(report.cex.cycles.size()) - 1;
      confirmAndWitness(p, &report);
      if (report.status == PropStatus::Fail) {
        std::string how = "model";
        if (report.cex.confirmed) how = "machine-confirmed";
        if (report.cex.interpVerified)
          how += report.cex.jitVerified ? ", replay-verified (interp+jit)"
                                        : ", replay-verified (interp)";
        report.detail = strfmt("%s violated at cycle %d (%s)",
                               p.describe().c_str(), report.cex.violationCycle,
                               how.c_str());
      } else {
        report.detail =
            strfmt("%s: abstract candidate at cycle %d refuted concretely",
                   p.describe().c_str(), report.cex.violationCycle);
      }
    } else if (run_.passIsSound()) {
      report.status = PropStatus::Pass;
      report.detail = strfmt("holds over all %d reachable states",
                             run_.statesExplored);
    } else {
      report.status = PropStatus::Unknown;
      report.detail = !run_.effectsSound
                          ? "effect summaries incomplete (no compiled image)"
                          : "search truncated before exhausting the bound";
    }
    run_.properties.push_back(std::move(report));
  }
  emitFindings();
  return run_;
}

}  // namespace

const char* propStatusName(PropStatus s) {
  switch (s) {
    case PropStatus::Pass: return "pass";
    case PropStatus::Fail: return "fail";
    case PropStatus::Unknown: return "unknown";
  }
  return "?";
}

int CheckResult::failCount() const {
  return static_cast<int>(
      std::count_if(properties.begin(), properties.end(),
                    [](const PropertyReport& r) { return r.status == PropStatus::Fail; }));
}

int CheckResult::unknownCount() const {
  return static_cast<int>(std::count_if(
      properties.begin(), properties.end(),
      [](const PropertyReport& r) { return r.status == PropStatus::Unknown; }));
}

std::string CheckResult::renderText() const {
  std::string out = strfmt("check '%s' (spec %s): %zu properties, %d states%s\n",
                           chartName.c_str(), specFile.c_str(),
                           properties.size(), statesExplored,
                           passIsSound() ? "" : " [truncated]");
  for (const PropertyReport& r : properties)
    out += strfmt("  [%s] %s (%s): %s\n",
                  r.status == PropStatus::Pass      ? "PASS"
                  : r.status == PropStatus::Fail    ? "FAIL"
                                                    : "UNKNOWN",
                  r.name.c_str(), propKindName(r.kind), r.detail.c_str());
  AnalysisResult findingsView;
  findingsView.chartName = chartName;
  findingsView.imageHash = imageHash;
  findingsView.findings = findings;
  out += findingsView.renderText();
  return out;
}

std::string CheckResult::renderJson(int indent) const {
  JsonValue doc = JsonValue::makeObject();
  doc.set("schema", JsonValue::makeString("pscp-check-v1"));
  doc.set("chart", JsonValue::makeString(chartName));
  doc.set("spec", JsonValue::makeString(specFile));
  if (imageHash != 0)
    doc.set("image_hash",
            JsonValue::makeString(strfmt(
                "0x%016llx", static_cast<unsigned long long>(imageHash))));
  doc.set("states_explored", JsonValue::makeNumber(statesExplored));
  doc.set("complete", JsonValue::makeBool(complete));
  doc.set("event_sets_complete", JsonValue::makeBool(eventSetsComplete));
  doc.set("choices_complete", JsonValue::makeBool(choicesComplete));
  doc.set("model_exact", JsonValue::makeBool(modelExact));
  doc.set("effects_sound", JsonValue::makeBool(effectsSound));
  doc.set("pass_is_sound", JsonValue::makeBool(passIsSound()));

  JsonValue props = JsonValue::makeArray();
  for (const PropertyReport& r : properties) {
    JsonValue p = JsonValue::makeObject();
    p.set("name", JsonValue::makeString(r.name));
    p.set("kind", JsonValue::makeString(propKindName(r.kind)));
    p.set("status", JsonValue::makeString(propStatusName(r.status)));
    p.set("detail", JsonValue::makeString(r.detail));
    if (r.spurious) p.set("spurious", JsonValue::makeBool(true));
    if (r.status == PropStatus::Fail || r.spurious) {
      JsonValue cex = JsonValue::makeObject();
      cex.set("violation_cycle", JsonValue::makeNumber(r.cex.violationCycle));
      JsonValue cycles = JsonValue::makeArray();
      for (const std::vector<std::string>& cycle : r.cex.cycles) {
        JsonValue events = JsonValue::makeArray();
        for (const std::string& ev : cycle)
          events.array.push_back(JsonValue::makeString(ev));
        cycles.array.push_back(std::move(events));
      }
      cex.set("cycles", std::move(cycles));
      cex.set("confirmed", JsonValue::makeBool(r.cex.confirmed));
      cex.set("jit_checked", JsonValue::makeBool(r.cex.jitChecked));
      cex.set("jit_confirmed", JsonValue::makeBool(r.cex.jitConfirmed));
      cex.set("replay_interp_verified",
              JsonValue::makeBool(r.cex.interpVerified));
      cex.set("replay_jit_verified", JsonValue::makeBool(r.cex.jitVerified));
      if (r.cex.journalBuilt) cex.set("journal", r.cex.journal.toJson());
      p.set("counterexample", std::move(cex));
    }
    props.array.push_back(std::move(p));
  }
  doc.set("properties", std::move(props));

  JsonValue fs = JsonValue::makeArray();
  for (const Finding& f : findings) {
    JsonValue j = JsonValue::makeObject();
    j.set("code", JsonValue::makeString(f.code));
    j.set("severity", JsonValue::makeString(severityName(f.severity)));
    j.set("message", JsonValue::makeString(f.message));
    j.set("file", JsonValue::makeString(f.loc.file));
    j.set("line", JsonValue::makeNumber(f.loc.line));
    j.set("column", JsonValue::makeNumber(f.loc.column));
    if (!f.resource.empty())
      j.set("resource", JsonValue::makeString(f.resource));
    fs.array.push_back(std::move(j));
  }
  doc.set("findings", std::move(fs));
  return doc.dump(indent) + "\n";
}

CheckResult runBoundedCheck(const statechart::Chart& chart,
                            const actionlang::Program& actions,
                            const SpecFile& spec,
                            std::shared_ptr<const machine::ChartImage> image,
                            const CheckOptions& options) {
  return Checker(chart, actions, spec, std::move(image), options).run();
}

}  // namespace pscp::analysis::check
