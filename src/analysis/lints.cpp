// Action-language and microcode lints.
//
//   PSCP-AL001  assignment narrows the value's width (int:N truncation)
//   PSCP-AL002  scalar local read before any assignment on some path
//   PSCP-AL003  control transfer outside program memory (compiled code)
//   PSCP-AL004  declared port never referenced by any declaration or action
//
// AL002 is a classic definite-assignment dataflow over the statement tree:
// both branches of an `if` must assign before the join counts; a `while`
// body may execute zero times, so its assignments never count.
#include <set>
#include <string>
#include <vector>

#include "analysis/passes.hpp"
#include "support/text.hpp"

namespace pscp::analysis {

namespace {

using actionlang::Expr;
using actionlang::ExprKind;
using actionlang::Function;
using actionlang::Stmt;
using actionlang::StmtKind;

[[nodiscard]] bool fitsInWidth(int64_t value, int width, bool isSigned) {
  if (width >= 64) return true;
  if (isSigned) {
    const int64_t lo = -(int64_t{1} << (width - 1));
    const int64_t hi = (int64_t{1} << (width - 1)) - 1;
    return value >= lo && value <= hi;
  }
  return value >= 0 && value < (int64_t{1} << width);
}

// ------------------------------------------------------------- AL001

void checkNarrowing(AnalysisContext& ctx, const Function& f, const Expr& rhs,
                    const actionlang::TypePtr& lhsType, const SourceLoc& loc,
                    const char* what, const std::string& target) {
  if (lhsType == nullptr || !lhsType->isInt()) return;
  if (rhs.type == nullptr || !rhs.type->isInt()) return;
  if (rhs.type->width() <= lhsType->width()) return;
  if (rhs.constant.has_value() &&
      fitsInWidth(*rhs.constant, lhsType->width(), lhsType->isSigned()))
    return;  // provably fits
  Finding finding;
  finding.code = kCodeTruncatingAssign;
  finding.severity = Severity::Warning;
  finding.message = strfmt(
      "%s to %s '%s' truncates: value has type %s, destination %s (in '%s')",
      what, lhsType->isSigned() ? "int" : "uint", target.c_str(),
      rhs.type->str().c_str(), lhsType->str().c_str(), f.name.c_str());
  finding.loc = loc;
  ctx.result->findings.push_back(std::move(finding));
}

void walkStmtsNarrowing(AnalysisContext& ctx, const Function& f,
                        const std::vector<actionlang::StmtPtr>& body) {
  for (const auto& sp : body) {
    const Stmt& s = *sp;
    switch (s.kind) {
      case StmtKind::VarDecl:
        if (s.expr != nullptr)
          checkNarrowing(ctx, f, *s.expr, s.varType, s.loc, "initialization",
                         s.varName);
        break;
      case StmtKind::Assign:
        if (s.lhs != nullptr && s.expr != nullptr)
          checkNarrowing(ctx, f, *s.expr, s.lhs->type, s.loc, "assignment",
                         s.lhs->str());
        break;
      case StmtKind::If:
        walkStmtsNarrowing(ctx, f, s.body);
        walkStmtsNarrowing(ctx, f, s.elseBody);
        break;
      case StmtKind::While:
      case StmtKind::Block:
        walkStmtsNarrowing(ctx, f, s.body);
        break;
      default:
        break;
    }
  }
}

// ------------------------------------------------------------- AL002

/// Definite-assignment state for one function walk.
struct DefAssign {
  std::set<std::string> scalars;   ///< tracked locals (scalar VarDecls)
  std::set<std::string> assigned;  ///< definitely assigned here
  std::set<std::string> reported;  ///< one finding per variable
};

void checkReads(AnalysisContext& ctx, const Function& f, const Expr& e,
                DefAssign* state) {
  if (e.kind == ExprKind::VarRef) {
    if (state->scalars.count(e.name) != 0 && state->assigned.count(e.name) == 0 &&
        state->reported.insert(e.name).second) {
      Finding finding;
      finding.code = kCodeUninitializedRead;
      finding.severity = Severity::Warning;
      finding.message = strfmt("local '%s' may be read before assignment in '%s'",
                               e.name.c_str(), f.name.c_str());
      finding.loc = e.loc.known() ? e.loc : f.loc;
      ctx.result->findings.push_back(std::move(finding));
    }
    return;
  }
  for (const auto& c : e.children) checkReads(ctx, f, *c, state);
}

void walkDefAssign(AnalysisContext& ctx, const Function& f,
                   const std::vector<actionlang::StmtPtr>& body, DefAssign* state) {
  for (const auto& sp : body) {
    const Stmt& s = *sp;
    switch (s.kind) {
      case StmtKind::Block:
        walkDefAssign(ctx, f, s.body, state);
        break;
      case StmtKind::VarDecl:
        if (s.expr != nullptr) checkReads(ctx, f, *s.expr, state);
        if (s.varType != nullptr && s.varType->isScalar()) {
          state->scalars.insert(s.varName);
          if (s.expr != nullptr) state->assigned.insert(s.varName);
        }
        break;
      case StmtKind::Assign:
        if (s.expr != nullptr) checkReads(ctx, f, *s.expr, state);
        if (s.lhs != nullptr) {
          if (s.lhs->kind == ExprKind::VarRef) {
            state->assigned.insert(s.lhs->name);
          } else {
            // Aggregate lvalue: index expressions inside it are reads (the
            // aggregate itself is not a tracked scalar, so no false hit).
            checkReads(ctx, f, *s.lhs, state);
          }
        }
        break;
      case StmtKind::If: {
        if (s.expr != nullptr) checkReads(ctx, f, *s.expr, state);
        DefAssign thenState = *state;
        DefAssign elseState = *state;
        walkDefAssign(ctx, f, s.body, &thenState);
        walkDefAssign(ctx, f, s.elseBody, &elseState);
        // Assigned after the join = assigned on both paths.
        std::set<std::string> joined;
        for (const std::string& n : thenState.assigned)
          if (elseState.assigned.count(n) != 0) joined.insert(n);
        state->assigned = std::move(joined);
        for (const std::string& n : thenState.reported) state->reported.insert(n);
        for (const std::string& n : elseState.reported) state->reported.insert(n);
        break;
      }
      case StmtKind::While: {
        if (s.expr != nullptr) checkReads(ctx, f, *s.expr, state);
        // Body may run zero times: walk on a copy, keep only the reports.
        DefAssign bodyState = *state;
        walkDefAssign(ctx, f, s.body, &bodyState);
        for (const std::string& n : bodyState.reported) state->reported.insert(n);
        break;
      }
      case StmtKind::Return:
      case StmtKind::ExprStmt:
        if (s.expr != nullptr) checkReads(ctx, f, *s.expr, state);
        break;
    }
  }
}

// ------------------------------------------------------------- AL004

void collectPortRefs(const Expr& e, std::set<std::string>* used) {
  if (e.kind == ExprKind::Call &&
      (e.name == "read_port" || e.name == "write_port") && !e.children.empty() &&
      e.children[0]->kind == ExprKind::VarRef)
    used->insert(e.children[0]->name);
  for (const auto& c : e.children) collectPortRefs(*c, used);
}

void collectPortRefs(const std::vector<actionlang::StmtPtr>& body,
                     std::set<std::string>* used) {
  for (const auto& sp : body) {
    const Stmt& s = *sp;
    if (s.lhs != nullptr) collectPortRefs(*s.lhs, used);
    if (s.expr != nullptr) collectPortRefs(*s.expr, used);
    collectPortRefs(s.body, used);
    collectPortRefs(s.elseBody, used);
  }
}

}  // namespace

void runLintPass(AnalysisContext& ctx) {
  // AL001 + AL002 over every function body (intrinsics have none).
  for (const Function& f : ctx.program.functions) {
    if (f.isIntrinsic) continue;
    walkStmtsNarrowing(ctx, f, f.body);
    DefAssign state;
    walkDefAssign(ctx, f, f.body, &state);
  }

  // AL003: control transfers outside program memory, from the code scan.
  for (const BadJump& bad : ctx.badJumps) {
    Finding f;
    f.code = kCodeJumpOutOfRange;
    f.severity = Severity::Error;
    f.message = strfmt(
        "instruction %d of routine '%s' transfers control to %d, outside "
        "program memory [0, %zu)",
        bad.instrIndex, bad.routine.c_str(), bad.target,
        ctx.compiled != nullptr ? ctx.compiled->program.code.size() : 0);
    ctx.result->findings.push_back(std::move(f));
  }

  // AL004: ports no declaration or action ever names.
  std::set<std::string> used;
  for (const auto& [name, decl] : ctx.chart.events())
    if (!decl.port.empty()) used.insert(decl.port);
  for (const auto& [name, decl] : ctx.chart.conditions())
    if (!decl.port.empty()) used.insert(decl.port);
  for (const EffectSet& e : ctx.effects) {
    for (const auto& [name, value] : e.portWrites) used.insert(name);
    for (const std::string& name : e.portReads) used.insert(name);
  }
  for (const Function& f : ctx.program.functions) collectPortRefs(f.body, &used);
  for (const auto& [name, port] : ctx.chart.ports()) {
    if (used.count(name) != 0) continue;
    Finding f;
    f.code = kCodeUnreferencedPort;
    f.severity = Severity::Note;
    f.message = strfmt("port '%s' is declared but never referenced", name.c_str());
    f.loc = port.loc;
    ctx.result->findings.push_back(std::move(f));
  }
}

}  // namespace pscp::analysis
