// Reachability / liveness pass: explicit BFS over the configuration graph.
//
// Configurations are downward-closed active-state sets, packed into a
// BitVec over StateId. Events and conditions are left *free*: a transition
// is considered fireable from a configuration when its source is active
// and its trigger/guard conjunction is boolean-satisfiable (enumerated for
// up to maxGuardVars referenced names, assumed satisfiable above that).
// Successors fire one transition at a time; because concurrently firing
// transitions have disjoint exit sets, sequential firing passes through
// every configuration parallel firing can produce, so the explored set
// over-approximates the reachable set — a state we never see is genuinely
// unreachable (within the exploration bound), and a state we do see may
// be an artifact of an interleaving the scheduler would not pick.
//
// When the configuration cap trips, PSCP-RE000 is reported and the
// unreachable/dead findings are withheld: they would be unsound.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/passes.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace pscp::analysis {

namespace {

using statechart::BoolExpr;
using statechart::StateId;
using statechart::Transition;

/// Satisfiability of trigger AND guard over free event/condition values.
[[nodiscard]] bool labelSatisfiable(const Transition& t, int maxGuardVars) {
  std::vector<std::string> names = t.label.trigger.referencedNames();
  for (const std::string& n : t.label.guard.referencedNames())
    if (std::find(names.begin(), names.end(), n) == names.end()) names.push_back(n);
  if (static_cast<int>(names.size()) > maxGuardVars) return true;  // assume sat
  const uint64_t combos = uint64_t{1} << names.size();
  for (uint64_t bits = 0; bits < combos; ++bits) {
    const auto lookup = [&](const std::string& n) {
      for (size_t i = 0; i < names.size(); ++i)
        if (names[i] == n) return ((bits >> i) & 1) != 0;
      return false;
    };
    if (t.label.trigger.eval(lookup) && t.label.guard.eval(lookup)) return true;
  }
  return false;
}

[[nodiscard]] BitVec packConfig(const std::set<StateId>& states, int stateCount) {
  BitVec v(stateCount);
  for (StateId s : states) v.set(s);
  return v;
}

/// Stable key for the visited set.
[[nodiscard]] std::string configKey(const BitVec& v) {
  std::string key;
  key.reserve(v.wordCount() * sizeof(uint64_t));
  for (size_t w = 0; w < v.wordCount(); ++w) {
    const uint64_t word = v.word(w);
    for (int byte = 0; byte < 8; ++byte)
      key.push_back(static_cast<char>((word >> (byte * 8)) & 0xFF));
  }
  return key;
}

}  // namespace

void runReachabilityPass(AnalysisContext& ctx) {
  const auto& chart = ctx.chart;
  const int stateCount = static_cast<int>(chart.stateCount());
  const size_t transitionCount = chart.transitions().size();

  // Precompute per-transition firing data; constant-false labels are
  // reported here and never fire.
  std::vector<bool> satisfiable(transitionCount, false);
  std::vector<BitVec> exitBits;
  std::vector<BitVec> enterBits;
  exitBits.reserve(transitionCount);
  enterBits.reserve(transitionCount);
  for (const Transition& t : chart.transitions()) {
    satisfiable[static_cast<size_t>(t.id)] = labelSatisfiable(t, ctx.options.maxGuardVars);
    if (!satisfiable[static_cast<size_t>(t.id)]) {
      Finding f;
      f.code = kCodeConstFalseGuard;
      f.severity = Severity::Warning;
      f.message = strfmt("trigger/guard of transition '%s -> %s' (%s) is never true",
                         chart.state(t.source).name.c_str(),
                         chart.state(t.target).name.c_str(), t.label.raw.c_str());
      f.loc = t.loc;
      ctx.result->findings.push_back(std::move(f));
    }
    exitBits.push_back(packConfig(ctx.interp.exitSet(t.id), stateCount));
    enterBits.push_back(packConfig(ctx.interp.enterSet(t.id), stateCount));
  }

  // BFS.
  std::set<StateId> initial{chart.root()};
  for (StateId s : chart.defaultCompletion(chart.root())) initial.insert(s);
  BitVec start = packConfig(initial, stateCount);

  std::set<std::string> visited;
  std::vector<BitVec> frontier{start};
  visited.insert(configKey(start));

  std::vector<bool> stateReached(stateCount, false);
  std::vector<bool> transitionFired(transitionCount, false);
  bool truncated = false;
  int explored = 0;

  while (!frontier.empty()) {
    const BitVec config = frontier.back();
    frontier.pop_back();
    ++explored;
    config.forEachSetBit([&](int s) { stateReached[static_cast<size_t>(s)] = true; });

    for (const Transition& t : chart.transitions()) {
      const auto id = static_cast<size_t>(t.id);
      if (!satisfiable[id]) continue;
      if (!config.test(t.source)) continue;
      transitionFired[id] = true;

      BitVec next = config;
      exitBits[id].forEachSetBit([&](int s) { next.reset(s); });
      enterBits[id].forEachSetBit([&](int s) { next.set(s); });
      std::string key = configKey(next);
      if (visited.count(key) != 0) continue;
      if (static_cast<int>(visited.size()) >= ctx.options.maxConfigurations) {
        truncated = true;
        continue;
      }
      visited.insert(std::move(key));
      frontier.push_back(std::move(next));
    }
  }

  ctx.result->configurationsExplored = explored;
  ctx.result->reachabilityComplete = !truncated;
  if (truncated) {
    Finding f;
    f.code = kCodeReachTruncated;
    f.severity = Severity::Note;
    f.message = strfmt(
        "configuration exploration truncated at %d configurations; "
        "unreachable-state and dead-transition checks skipped (raise "
        "--max-configs to re-enable)",
        ctx.options.maxConfigurations);
    ctx.result->findings.push_back(std::move(f));
    return;
  }

  // Unreachable states: report the topmost unreached state of each
  // unreached subtree (children are implied).
  for (const statechart::State& st : chart.states()) {
    if (st.id == chart.root()) continue;
    if (stateReached[static_cast<size_t>(st.id)]) continue;
    if (st.parent != statechart::kNoState &&
        !stateReached[static_cast<size_t>(st.parent)])
      continue;
    Finding f;
    f.code = kCodeUnreachableState;
    f.severity = Severity::Warning;
    f.message = strfmt("state '%s' is unreachable from the initial configuration",
                       st.name.c_str());
    f.loc = st.loc;
    ctx.result->findings.push_back(std::move(f));
  }

  // Dead transitions (never fired). Constant-false labels already have
  // their own finding; add a cause note when the source is unreachable.
  for (const Transition& t : chart.transitions()) {
    const auto id = static_cast<size_t>(t.id);
    if (transitionFired[id] || !satisfiable[id]) continue;
    Finding f;
    f.code = kCodeDeadTransition;
    f.severity = Severity::Warning;
    f.message = strfmt("transition '%s -> %s' (%s) can never fire",
                       chart.state(t.source).name.c_str(),
                       chart.state(t.target).name.c_str(),
                       t.label.raw.empty() ? "<no label>" : t.label.raw.c_str());
    f.loc = t.loc;
    if (!stateReached[static_cast<size_t>(t.source)])
      f.notes.emplace_back(chart.state(t.source).loc,
                           strfmt("source state '%s' is unreachable",
                                  chart.state(t.source).name.c_str()));
    ctx.result->findings.push_back(std::move(f));
  }
}

}  // namespace pscp::analysis
