// Conflict and write-race passes (pairwise over co-selectable transitions).
//
// Conflicts: the SLA selects every enabled transition; the scheduler then
// resolves overlapping exit sets by structural priority (shallower scope
// wins) and, at equal depth, declaration order. A pair resolved purely by
// declaration order is genuine nondeterminism the runtime hides — that is
// the Warning. A pair resolved by scope depth is Statemate-style priority,
// reported as a Note so reviewers can confirm it is intentional.
//
// Races: two transitions with disjoint exit sets both fire in the same
// configuration cycle, on different TEPs, concurrently. Their effect
// summaries (analysis/effects) are intersected over the *shared* machine
// state: data ports, CR condition bits, and external-RAM globals.
// Condition reads are snapshot semantics (per-TEP condition caches are
// copied from the CR at cycle start), so write-vs-read on a condition is
// NOT a hazard; write-write is, because write-back order decides the
// final bit. Event raising is idempotent and never reported.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/passes.hpp"
#include "support/text.hpp"

namespace pscp::analysis {

namespace {

using statechart::Transition;
using statechart::TransitionId;

[[nodiscard]] std::string describeTransition(const AnalysisContext& ctx,
                                             const Transition& t) {
  return strfmt("'%s -> %s' (%s)", ctx.chart.state(t.source).name.c_str(),
                ctx.chart.state(t.target).name.c_str(),
                t.label.raw.empty() ? "<no label>" : t.label.raw.c_str());
}

[[nodiscard]] bool exitSetsIntersect(const AnalysisContext& ctx, TransitionId a,
                                     TransitionId b) {
  const std::set<statechart::StateId> ea = ctx.interp.exitSet(a);
  const std::set<statechart::StateId> eb = ctx.interp.exitSet(b);
  const auto& small = ea.size() <= eb.size() ? ea : eb;
  const auto& large = ea.size() <= eb.size() ? eb : ea;
  return std::any_of(small.begin(), small.end(),
                     [&](statechart::StateId s) { return large.count(s) != 0; });
}

}  // namespace

void runConflictPass(AnalysisContext& ctx) {
  const auto& transitions = ctx.chart.transitions();
  for (size_t i = 0; i < transitions.size(); ++i) {
    for (size_t j = i + 1; j < transitions.size(); ++j) {
      const Transition& a = transitions[i];
      const Transition& b = transitions[j];
      if (!coSelectable(ctx, a.id, b.id)) continue;
      if (!exitSetsIntersect(ctx, a.id, b.id)) continue;

      const int da = ctx.chart.depth(ctx.interp.scopeOf(a.id));
      const int db = ctx.chart.depth(ctx.interp.scopeOf(b.id));
      Finding f;
      if (da == db) {
        f.code = kCodeConflict;
        f.severity = Severity::Warning;
        f.message = strfmt(
            "transitions %s and %s can be enabled together and exit "
            "overlapping states; at equal scope depth the winner is picked "
            "by declaration order",
            describeTransition(ctx, a).c_str(), describeTransition(ctx, b).c_str());
      } else {
        f.code = kCodeMaskedConflict;
        f.severity = Severity::Note;
        f.message = strfmt(
            "transitions %s and %s conflict; resolved by structural "
            "priority (scope depth %d beats %d)",
            describeTransition(ctx, da < db ? a : b).c_str(),
            describeTransition(ctx, da < db ? b : a).c_str(), std::min(da, db),
            std::max(da, db));
      }
      f.loc = a.loc;
      f.notes.emplace_back(b.loc, "the other transition of the pair");
      ctx.result->findings.push_back(std::move(f));
    }
  }
}

namespace {

/// Write-write collision over one resource map pair; returns the colliding
/// names whose values are not provably identical constants.
[[nodiscard]] std::vector<std::string> writeWriteCollisions(
    const std::map<std::string, std::optional<int64_t>>& wa,
    const std::map<std::string, std::optional<int64_t>>& wb) {
  std::vector<std::string> out;
  for (const auto& [name, va] : wa) {
    auto it = wb.find(name);
    if (it == wb.end()) continue;
    const auto& vb = it->second;
    if (va.has_value() && vb.has_value() && *va == *vb) continue;  // benign
    out.push_back(name);
  }
  return out;
}

[[nodiscard]] std::vector<std::string> writeReadCollisions(
    const std::map<std::string, std::optional<int64_t>>& writes,
    const std::set<std::string>& reads) {
  std::vector<std::string> out;
  for (const auto& [name, value] : writes)
    if (reads.count(name) != 0) out.push_back(name);
  return out;
}

// Global resources are element-granular ("motors[0]"); a bare base name
// means "some element" and collides with every element of that base.
[[nodiscard]] std::string resourceBase(const std::string& r) {
  const size_t at = r.find('[');
  return at == std::string::npos ? r : r.substr(0, at);
}

[[nodiscard]] bool resourcesCollide(const std::string& a, const std::string& b) {
  return a == b || resourceBase(a) == b || a == resourceBase(b);
}

[[nodiscard]] std::vector<std::string> setCollisions(const std::set<std::string>& a,
                                                     const std::set<std::string>& b) {
  std::vector<std::string> out;
  for (const std::string& ra : a)
    for (const std::string& rb : b)
      if (resourcesCollide(ra, rb)) out.push_back(ra);
  return out;
}

void reportRace(AnalysisContext& ctx, const Transition& a, const Transition& b,
                const char* code, Severity severity, const char* what,
                std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  for (const std::string& name : names) {
    Finding f;
    f.code = code;
    f.severity = severity;
    f.message = strfmt(
        "%s '%s' is accessed by transitions %s and %s, which can fire "
        "concurrently on different TEPs",
        what, name.c_str(), describeTransition(ctx, a).c_str(),
        describeTransition(ctx, b).c_str());
    f.resource = name;
    f.loc = a.loc;
    f.notes.emplace_back(b.loc, "the other transition of the pair");
    ctx.result->findings.push_back(std::move(f));
  }
}

}  // namespace

void runRacePass(AnalysisContext& ctx) {
  const auto& transitions = ctx.chart.transitions();
  for (size_t i = 0; i < transitions.size(); ++i) {
    for (size_t j = i + 1; j < transitions.size(); ++j) {
      const Transition& a = transitions[i];
      const Transition& b = transitions[j];
      // Concurrent dispatch requires: both selectable in one CR decode,
      // disjoint exit sets (else conflict resolution fires only one), and
      // no shared exclusion group (the scheduler serializes those).
      if (!a.exclusionGroup.empty() && a.exclusionGroup == b.exclusionGroup) continue;
      if (!coSelectable(ctx, a.id, b.id)) continue;
      if (exitSetsIntersect(ctx, a.id, b.id)) continue;

      const EffectSet& ea = ctx.effects[i];
      const EffectSet& eb = ctx.effects[j];

      reportRace(ctx, a, b, kCodeWriteWrite, Severity::Error, "port",
                 writeWriteCollisions(ea.portWrites, eb.portWrites));
      // Condition write-write is order-dependent but reported at Warning:
      // charts routinely serialize such pairs through guard conditions the
      // analysis leaves free (a state/condition invariant it cannot see),
      // and a lost CR-bit update is recoverable where a bus write is not.
      reportRace(ctx, a, b, kCodeWriteWrite, Severity::Warning, "condition",
                 writeWriteCollisions(ea.condWrites, eb.condWrites));
      reportRace(ctx, a, b, kCodeWriteWrite, Severity::Error, "global",
                 setCollisions(ea.globalWrites, eb.globalWrites));

      std::vector<std::string> rw = writeReadCollisions(ea.portWrites, eb.portReads);
      for (std::string& n : writeReadCollisions(eb.portWrites, ea.portReads))
        rw.push_back(std::move(n));
      reportRace(ctx, a, b, kCodeReadWrite, Severity::Warning, "port", rw);

      std::vector<std::string> grw;
      for (const std::string& n : setCollisions(ea.globalWrites, eb.globalReads))
        grw.push_back(n);
      for (const std::string& n : setCollisions(eb.globalWrites, ea.globalReads))
        grw.push_back(n);
      reportRace(ctx, a, b, kCodeReadWrite, Severity::Warning, "global", grw);
      // Condition write-vs-read is snapshot-isolated (per-TEP condition
      // caches) — deliberately not reported.
    }
  }
}

}  // namespace pscp::analysis
