#include "analysis/analyzer.hpp"

#include "analysis/passes.hpp"
#include "sla/encoding.hpp"
#include "sla/sla.hpp"
#include "statechart/semantics.hpp"

namespace pscp::analysis {

Analyzer::Analyzer(const statechart::Chart& chart, const actionlang::Program& program,
                   AnalyzerOptions options)
    : chart_(chart), program_(program), options_(options) {}

void Analyzer::attachCompiled(const compiler::CompiledApp& app) { compiled_ = &app; }

AnalysisResult Analyzer::run() {
  AnalysisResult result;
  result.chartName = chart_.name();

  const sla::CrLayout layout(chart_);
  const sla::Sla sla(chart_, layout);
  const statechart::Interpreter interp(chart_);

  // Per-transition effect summaries: AST first, then — when the compiled
  // program is attached — whatever the assembled routine actually touches.
  std::vector<EffectSet> effects(chart_.transitions().size());
  std::vector<BadJump> badJumps;
  const ReverseBinding reverse =
      compiled_ != nullptr ? makeReverse(sla::makeBinding(chart_, layout))
                           : ReverseBinding{};
  for (const statechart::Transition& t : chart_.transitions()) {
    EffectSet& e = effects[static_cast<size_t>(t.id)];
    e = transitionEffects(t, program_);
    if (compiled_ != nullptr) {
      auto it = compiled_->transitionRoutine.find(t.id);
      // The AST summary is path-sensitive where the code scan is not (the
      // scan visits every branch of compiled dispatchers), so the scan
      // contributes effects only when the AST walk was incomplete; the
      // jump-range check always runs over the real microcode.
      if (it != compiled_->transitionRoutine.end())
        augmentFromRoutine(compiled_->program, it->second, reverse,
                           e.astComplete ? nullptr : &e, &badJumps);
    }
  }

  AnalysisContext ctx{chart_,  program_, options_, layout,   sla,
                      interp,  compiled_, effects,  badJumps, &result};
  if (options_.conflicts) runConflictPass(ctx);
  if (options_.races) runRacePass(ctx);
  if (options_.reachability) runReachabilityPass(ctx);
  if (options_.lints) runLintPass(ctx);
  return result;
}

namespace {

[[nodiscard]] bool termsCompatible(const sla::ProductTerm& a, const sla::ProductTerm& b) {
  for (const sla::ProductTerm::WordMask& wa : a.masks) {
    for (const sla::ProductTerm::WordMask& wb : b.masks) {
      if (wa.word != wb.word) continue;
      const uint64_t shared = wa.care & wb.care;
      if ((wa.value & shared) != (wb.value & shared)) return false;
    }
  }
  return true;
}

}  // namespace

bool coSelectable(const AnalysisContext& ctx, statechart::TransitionId a,
                  statechart::TransitionId b) {
  const statechart::Transition& ta = ctx.chart.transition(a);
  const statechart::Transition& tb = ctx.chart.transition(b);
  // Structural filter first: the greedy exclusivity partition may split a
  // mutually exclusive state pair across two CR fields, in which case the
  // mask test alone would call the pair satisfiable.
  if (sla::mutuallyExclusive(ctx.chart, ta.source, tb.source)) return false;
  const auto& terms = ctx.sla.transitionTerms();
  for (const sla::ProductTerm& pa : terms[static_cast<size_t>(a)])
    for (const sla::ProductTerm& pb : terms[static_cast<size_t>(b)])
      if (termsCompatible(pa, pb)) return true;
  return false;
}

}  // namespace pscp::analysis
