// Per-transition effect summaries for the race pass.
//
// A transition's observable effects are what its action routine does to
// shared machine state: events raised into the CR, condition bits written
// or tested, data ports read or written, and external-RAM globals touched.
// The summary is computed from the checked action-language AST by walking
// each label ActionCall into the callee with its formal->actual binding
// (event/cond/struct/array parameters bind by name, exactly as codegen
// specializes them), and can be *augmented* from the assembled TEP routine
// — the compiled code is what actually runs, so EVSET/CSET/CCLR/CTST and
// INP/OUTP instructions reached from the routine entry are folded in too.
//
// Write values are tracked as optional constants: two transitions both
// writing the same constant to a port is not an observable race, while two
// different constants (or any non-constant write) is.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "actionlang/ast.hpp"
#include "compiler/binding.hpp"
#include "statechart/chart.hpp"
#include "tep/isa.hpp"

namespace pscp::analysis {

struct EffectSet {
  std::set<std::string> eventsRaised;
  /// Condition name -> written value when it is a compile-time constant
  /// (nullopt = data-dependent). Two constant writes of equal value collide
  /// benignly; anything else is order-dependent.
  std::map<std::string, std::optional<int64_t>> condWrites;
  std::set<std::string> condReads;
  std::map<std::string, std::optional<int64_t>> portWrites;
  std::set<std::string> portReads;
  /// Action-language globals, element-granular when the subscript is
  /// statically bound ("motors[0]"); a bare name means "some element".
  std::set<std::string> globalWrites;
  std::set<std::string> globalReads;
  /// Subsets of the maps above recorded on a control path the static walk
  /// could not prove taken: under an If/While whose condition does not
  /// fold under the call binding, or contributed by the (branch-blind)
  /// code scan. A name here *may* fire at run time; a name in the maps
  /// above but absent here is definite. The race pass keeps treating every
  /// effect as definite (over-approximating hazards is sound there); the
  /// bounded model checker (src/analysis/check) branches over these.
  std::set<std::string> conditionalRaises;
  std::set<std::string> conditionalCondWrites;
  std::set<std::string> conditionalPortWrites;

  /// True when every label action resolved to a known function — the AST
  /// summary then covers the routine exactly and the (data-flow-blind)
  /// code scan is not needed as a fallback.
  bool astComplete = true;

  /// True when the summary is an exact model of the routine: the AST walk
  /// was complete, nothing was recorded under an unresolved branch, and
  /// every condition write has a known value. The checker's abstract step
  /// is then deterministic for this transition.
  [[nodiscard]] bool exact() const;

  /// Record a write, collapsing repeated writes with differing constants to
  /// "non-constant" (the pairwise comparison must then assume a race).
  static void recordWrite(std::map<std::string, std::optional<int64_t>>* map,
                          const std::string& name, std::optional<int64_t> value);
};

/// Effects of `t`'s action list under `program`. The program must have been
/// type-checked (constant folding fills Expr::constant). Unknown callee
/// names are skipped — the chart compiler rejects them separately.
[[nodiscard]] EffectSet transitionEffects(const statechart::Transition& t,
                                          const actionlang::Program& program);

/// Index->name inversion of a HardwareBinding, for decoding CSET/EVSET/OUTP
/// operands back to chart-level names.
struct ReverseBinding {
  std::map<int, std::string> eventByBit;
  std::map<int, std::string> conditionByBit;
  std::map<int, std::string> portByAddress;
};

[[nodiscard]] ReverseBinding makeReverse(const compiler::HardwareBinding& binding);

/// A control-transfer operand pointing outside program memory (PSCP-AL003).
struct BadJump {
  std::string routine;
  int instrIndex = 0;  ///< index of the offending instruction
  int32_t target = 0;  ///< out-of-range operand
};

/// Walk the assembled routine from its entry, following fall-through,
/// branch and CALL edges until TRET, folding every SLA/port instruction
/// into `effects` and recording control transfers that leave program
/// memory in `badJumps` (either out-param may be null).
void augmentFromRoutine(const tep::AsmProgram& program, const std::string& routine,
                        const ReverseBinding& names, EffectSet* effects,
                        std::vector<BadJump>* badJumps);

}  // namespace pscp::analysis
