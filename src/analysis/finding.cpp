#include "analysis/finding.hpp"

#include "support/json.hpp"
#include "support/text.hpp"

namespace pscp::analysis {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

int AnalysisResult::countAt(Severity s) const {
  int n = 0;
  for (const Finding& f : findings)
    if (f.severity == s) ++n;
  return n;
}

bool AnalysisResult::hasCode(const std::string& code) const {
  return findCode(code) != nullptr;
}

const Finding* AnalysisResult::findCode(const std::string& code) const {
  for (const Finding& f : findings)
    if (f.code == code) return &f;
  return nullptr;
}

std::string AnalysisResult::renderText() const {
  std::string out;
  for (const Finding& f : findings) {
    if (f.loc.known()) {
      out += f.loc.str();
      out += ": ";
    }
    out += strfmt("%s: %s [%s]\n", severityName(f.severity), f.message.c_str(),
                  f.code.c_str());
    for (const auto& [loc, note] : f.notes) {
      out += "    ";
      if (loc.known()) {
        out += loc.str();
        out += ": ";
      }
      out += "note: ";
      out += note;
      out += '\n';
    }
  }
  out += strfmt("%s: %d error(s), %d warning(s), %d note(s)\n",
                chartName.empty() ? "chart" : chartName.c_str(), errorCount(),
                warningCount(), countAt(Severity::Note));
  return out;
}

std::string AnalysisResult::renderJson(int indent) const {
  JsonValue doc = JsonValue::makeObject();
  doc.set("schema", JsonValue::makeString("pscp-lint-v1"));
  doc.set("chart", JsonValue::makeString(chartName));
  // Same format as the journal header's image_hash, for cross-referencing.
  if (imageHash != 0)
    doc.set("image_hash",
            JsonValue::makeString(strfmt(
                "0x%016llx", static_cast<unsigned long long>(imageHash))));

  JsonValue list = JsonValue::makeArray();
  for (const Finding& f : findings) {
    JsonValue item = JsonValue::makeObject();
    item.set("code", JsonValue::makeString(f.code));
    item.set("severity", JsonValue::makeString(severityName(f.severity)));
    item.set("message", JsonValue::makeString(f.message));
    if (!f.resource.empty()) item.set("resource", JsonValue::makeString(f.resource));
    if (f.loc.known()) {
      JsonValue loc = JsonValue::makeObject();
      loc.set("file", JsonValue::makeString(f.loc.file));
      loc.set("line", JsonValue::makeNumber(f.loc.line));
      loc.set("column", JsonValue::makeNumber(f.loc.column));
      item.set("location", std::move(loc));
    }
    if (!f.notes.empty()) {
      JsonValue notes = JsonValue::makeArray();
      for (const auto& [loc, note] : f.notes) {
        JsonValue n = JsonValue::makeObject();
        n.set("message", JsonValue::makeString(note));
        if (loc.known()) {
          JsonValue l = JsonValue::makeObject();
          l.set("file", JsonValue::makeString(loc.file));
          l.set("line", JsonValue::makeNumber(loc.line));
          l.set("column", JsonValue::makeNumber(loc.column));
          n.set("location", std::move(l));
        }
        notes.array.push_back(std::move(n));
      }
      item.set("notes", std::move(notes));
    }
    list.array.push_back(std::move(item));
  }
  doc.set("findings", std::move(list));

  JsonValue summary = JsonValue::makeObject();
  summary.set("errors", JsonValue::makeNumber(errorCount()));
  summary.set("warnings", JsonValue::makeNumber(warningCount()));
  summary.set("notes", JsonValue::makeNumber(countAt(Severity::Note)));
  doc.set("summary", std::move(summary));

  JsonValue reach = JsonValue::makeObject();
  reach.set("configurations_explored", JsonValue::makeNumber(configurationsExplored));
  reach.set("complete", JsonValue::makeBool(reachabilityComplete));
  doc.set("reachability", std::move(reach));

  std::string text = doc.dump(indent);
  text += '\n';
  return text;
}

}  // namespace pscp::analysis
