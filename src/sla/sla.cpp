#include "sla/sla.hpp"

#include <algorithm>
#include <functional>

namespace pscp::sla {

using statechart::BoolExpr;
using statechart::BoolOp;
using statechart::Chart;
using statechart::StateId;
using statechart::TransitionId;

bool ProductTerm::matches(const std::vector<bool>& crBits) const {
  return std::all_of(literals.begin(), literals.end(), [&](const Literal& lit) {
    PSCP_ASSERT(lit.bit >= 0 && lit.bit < static_cast<int>(crBits.size()));
    return crBits[static_cast<size_t>(lit.bit)] == lit.polarity;
  });
}

void ProductTerm::compileMasks(int totalBits) {
  masks.clear();
  for (const Literal& lit : literals) {
    PSCP_ASSERT(lit.bit >= 0 && lit.bit < totalBits);
    const uint32_t word = static_cast<uint32_t>(lit.bit) >> 6;
    const uint64_t bit = uint64_t{1} << (static_cast<uint32_t>(lit.bit) & 63);
    auto it = std::find_if(masks.begin(), masks.end(),
                           [&](const WordMask& m) { return m.word == word; });
    if (it == masks.end()) {
      masks.push_back(WordMask{word, 0, 0});
      it = masks.end() - 1;
    }
    it->care |= bit;
    if (lit.polarity) it->value |= bit;
  }
}

namespace {

constexpr size_t kMaxTermsPerTransition = 256;

/// Sum-of-products form: a list of terms, each a list of literals.
using Sop = std::vector<std::vector<Literal>>;

Sop sopTrue() { return {{}}; }  // one empty term: always true
Sop sopFalse() { return {}; }

Sop sopAnd(const Sop& a, const Sop& b) {
  Sop out;
  for (const auto& ta : a)
    for (const auto& tb : b) {
      std::vector<Literal> merged = ta;
      bool contradiction = false;
      for (const Literal& lit : tb) {
        auto same = std::find_if(merged.begin(), merged.end(),
                                 [&](const Literal& m) { return m.bit == lit.bit; });
        if (same != merged.end()) {
          if (same->polarity != lit.polarity) {
            contradiction = true;
            break;
          }
          continue;  // duplicate literal
        }
        merged.push_back(lit);
      }
      if (!contradiction) out.push_back(std::move(merged));
      if (out.size() > kMaxTermsPerTransition)
        fail("SLA product-term explosion (> %zu terms)", kMaxTermsPerTransition);
    }
  return out;
}

Sop sopOr(Sop a, const Sop& b) {
  a.insert(a.end(), b.begin(), b.end());
  if (a.size() > kMaxTermsPerTransition)
    fail("SLA product-term explosion (> %zu terms)", kMaxTermsPerTransition);
  return a;
}

/// Expand a label boolean expression to SOP over CR bits. `negated` pushes
/// negations down (De Morgan).
Sop expand(const BoolExpr& e, bool negated,
           const std::function<int(const std::string&)>& bitOf) {
  switch (e.op()) {
    case BoolOp::True:
      return negated ? sopFalse() : sopTrue();
    case BoolOp::Ref:
      return {{Literal{bitOf(e.name()), !negated}}};
    case BoolOp::Not:
      return expand(e.children()[0], !negated, bitOf);
    case BoolOp::And: {
      // negated AND -> OR of negated children.
      Sop acc = negated ? sopFalse() : sopTrue();
      for (const BoolExpr& k : e.children()) {
        const Sop part = expand(k, negated, bitOf);
        acc = negated ? sopOr(std::move(acc), part) : sopAnd(acc, part);
      }
      return acc;
    }
    case BoolOp::Or: {
      Sop acc = negated ? sopTrue() : sopFalse();
      for (const BoolExpr& k : e.children()) {
        const Sop part = expand(k, negated, bitOf);
        acc = negated ? sopAnd(acc, part) : sopOr(std::move(acc), part);
      }
      return acc;
    }
  }
  return sopFalse();
}

}  // namespace

Sla::Sla(const Chart& chart, const CrLayout& layout) : chart_(chart), layout_(layout) {
  terms_.resize(chart.transitions().size());
  gates_.resize(chart.transitions().size());
  activityIndex_.resize(layout_.stateFields().size());
  for (size_t f = 0; f < layout_.stateFields().size(); ++f)
    activityIndex_[f].resize(layout_.stateFields()[f].states.size() + 1);
  for (const statechart::Transition& t : chart.transitions()) {
    // Source-state activity: the state's field must equal its code.
    const auto [fieldIndex, code] = layout_.stateCode(t.source);
    const StateField& field = layout_.stateFields()[static_cast<size_t>(fieldIndex)];
    std::vector<Literal> activity;
    for (int i = 0; i < field.width; ++i)
      activity.push_back(Literal{layout_.stateBase() + field.baseBit + i,
                                 ((code >> i) & 1) != 0});
    Sop sop = {activity};

    auto eventBit = [&](const std::string& name) { return layout_.eventBit(name); };
    auto condBit = [&](const std::string& name) {
      return layout_.conditionBase() + layout_.conditionBit(name);
    };
    sop = sopAnd(sop, expand(t.label.trigger, false, eventBit));
    sop = sopAnd(sop, expand(t.label.guard, false, condBit));

    auto& out = terms_[static_cast<size_t>(t.id)];
    out.reserve(sop.size());
    for (auto& termLits : sop) out.push_back(ProductTerm{std::move(termLits), {}});
    for (ProductTerm& pt : out) pt.compileMasks(layout_.totalBits());

    // Activity index entry. A transition with no terms (statically false
    // guard) can never fire and is left out of the index entirely.
    Gate& gate = gates_[static_cast<size_t>(t.id)];
    gate.field = fieldIndex;
    gate.code = code;
    if (!out.empty()) {
      // Trigger-event gate: an event bit required positive by *every*
      // product term. The SLA only needs to test such transitions when
      // that event was sampled this cycle.
      int required = -1;
      for (const Literal& lit : out.front().literals)
        if (lit.polarity && lit.bit < layout_.eventCount()) {
          const bool inAll = std::all_of(
              out.begin(), out.end(), [&](const ProductTerm& pt) {
                return std::find(pt.literals.begin(), pt.literals.end(), lit) !=
                       pt.literals.end();
              });
          if (inAll) {
            required = lit.bit;
            break;
          }
        }
      gate.requiredEventBit = required;
      activityIndex_[static_cast<size_t>(fieldIndex)][static_cast<size_t>(code)]
          .push_back(t.id);
    }
  }
  totalTerms_ = productTermCount();
  totalLiterals_ = literalCount();
}

std::vector<TransitionId> Sla::select(const BitVec& cr, SelectStats* stats) const {
  std::vector<TransitionId> out;
  selectInto(cr, out, stats);
  return out;
}

void Sla::selectInto(const BitVec& cr, std::vector<TransitionId>& out,
                     SelectStats* stats) const {
  // Stats model the hardware PLA, which exercises its full AND plane on
  // every decode — charged once per select, hoisted off the scan path so
  // observation cannot perturb what it measures.
  if (stats != nullptr) {
    stats->termsEvaluated += totalTerms_;
    stats->literalsEvaluated += totalLiterals_;
  }
  out.clear();
  const int stateBase = layout_.stateBase();
  for (size_t f = 0; f < activityIndex_.size(); ++f) {
    const StateField& field = layout_.stateFields()[f];
    const uint64_t code = cr.extract(stateBase + field.baseBit, field.width);
    if (code >= activityIndex_[f].size()) continue;  // code beyond any member
    for (const TransitionId t : activityIndex_[f][static_cast<size_t>(code)]) {
      const Gate& gate = gates_[static_cast<size_t>(t)];
      if (gate.requiredEventBit >= 0 && !cr.test(gate.requiredEventBit)) continue;
      for (const ProductTerm& pt : terms_[static_cast<size_t>(t)]) {
        if (pt.matchesPacked(cr)) {
          out.push_back(t);
          break;
        }
      }
    }
  }
  // Buckets interleave by field; selection order is by transition id.
  std::sort(out.begin(), out.end());
}

std::vector<TransitionId> Sla::select(const std::vector<bool>& crBits,
                                      SelectStats* stats) const {
  return select(BitVec::fromBools(crBits), stats);
}

std::vector<TransitionId> Sla::selectReference(
    const std::vector<bool>& crBits) const {
  std::vector<TransitionId> out;
  for (size_t t = 0; t < terms_.size(); ++t) {
    bool hit = false;
    for (const ProductTerm& pt : terms_[t]) {
      if (pt.matches(crBits)) {
        hit = true;
        break;
      }
    }
    if (hit) out.push_back(static_cast<TransitionId>(t));
  }
  return out;
}

int Sla::productTermCount() const {
  int n = 0;
  for (const auto& ts : terms_) n += static_cast<int>(ts.size());
  return n;
}

int Sla::literalCount() const {
  int n = 0;
  for (const auto& ts : terms_)
    for (const ProductTerm& pt : ts) n += static_cast<int>(pt.literals.size());
  return n;
}

std::string Sla::emitBlif(const std::string& modelName) const {
  std::string out = ".model " + modelName + "\n.inputs";
  for (int i = 0; i < layout_.totalBits(); ++i) out += strfmt(" cr%d", i);
  out += "\n.outputs";
  for (size_t t = 0; t < terms_.size(); ++t) out += strfmt(" t%zu", t);
  out += "\n";
  for (size_t t = 0; t < terms_.size(); ++t) {
    if (terms_[t].empty()) {
      out += strfmt(".names t%zu\n0\n", t);  // constant 0 (never enabled)
      continue;
    }
    // Each output: .names over the union of referenced inputs; one row per
    // product term with don't-cares elsewhere.
    std::vector<int> used;
    for (const ProductTerm& pt : terms_[t])
      for (const Literal& lit : pt.literals)
        if (std::find(used.begin(), used.end(), lit.bit) == used.end())
          used.push_back(lit.bit);
    std::sort(used.begin(), used.end());
    out += ".names";
    for (int bit : used) out += strfmt(" cr%d", bit);
    out += strfmt(" t%zu\n", t);
    for (const ProductTerm& pt : terms_[t]) {
      std::string row(used.size(), '-');
      for (const Literal& lit : pt.literals) {
        const auto pos = std::find(used.begin(), used.end(), lit.bit) - used.begin();
        row[static_cast<size_t>(pos)] = lit.polarity ? '1' : '0';
      }
      out += row + " 1\n";
    }
  }
  out += ".end\n";
  return out;
}

std::string Sla::emitVhdl(const std::string& entityName) const {
  std::string out;
  out += "library ieee;\nuse ieee.std_logic_1164.all;\n\n";
  out += "entity " + entityName + " is\n  port (\n";
  out += strfmt("    cr : in  std_logic_vector(%d downto 0);\n", layout_.totalBits() - 1);
  out += strfmt("    t  : out std_logic_vector(%zu downto 0)\n  );\n", terms_.size() - 1);
  out += "end entity;\n\narchitecture rtl of " + entityName + " is\nbegin\n";
  for (size_t t = 0; t < terms_.size(); ++t) {
    if (terms_[t].empty()) {
      out += strfmt("  t(%zu) <= '0';\n", t);
      continue;
    }
    std::string expr;
    for (size_t i = 0; i < terms_[t].size(); ++i) {
      if (i != 0) expr += " or ";
      std::string product;
      const ProductTerm& pt = terms_[t][i];
      for (size_t j = 0; j < pt.literals.size(); ++j) {
        if (j != 0) product += " and ";
        const Literal& lit = pt.literals[j];
        product += lit.polarity ? strfmt("cr(%d) = '1'", lit.bit)
                                : strfmt("cr(%d) = '0'", lit.bit);
      }
      expr += "(" + product + ")";
    }
    out += strfmt("  t(%zu) <= '1' when %s else '0';\n", t, expr.c_str());
  }
  out += "end architecture;\n";
  return out;
}

hwlib::ChartHardwareStats Sla::hardwareStats(const Chart& chart) const {
  hwlib::ChartHardwareStats stats;
  stats.productTerms = productTermCount();
  stats.crBits = layout_.totalBits();
  stats.ports = static_cast<int>(chart.ports().size());
  stats.transitions = static_cast<int>(chart.transitions().size());
  return stats;
}

compiler::HardwareBinding makeBinding(const Chart& chart, const CrLayout& layout) {
  compiler::HardwareBinding binding;
  binding.eventIndex = layout.eventBits();
  binding.conditionIndex = layout.conditionBits();
  for (const statechart::State& s : chart.states())
    binding.stateIndex[s.name] = s.id;
  for (const auto& [name, port] : chart.ports()) binding.portAddress[name] = port.address;
  return binding;
}

}  // namespace pscp::sla
