// Vector builds of the batched SLA mask kernel (see batch.hpp).
//
// This is the only TU with vector code, and it is compiled WITHOUT any
// -march flag beyond the project default: each kernel carries a
// function-level target attribute instead, so the library links and runs
// on any x86-64 host and the AVX2 path only executes when runtime dispatch
// (support/simd) selected it. Non-x86 builds compile the dispatch stub
// only; BatchedSla then falls back to the scalar kernel.
//
// Both kernels implement the identical decode as detail::maskKernelScalar:
//   1. OR the event-bit subsets of every CR word per lane; lanes with no
//     event sampled make every needs-event term skippable.
//   2. For each product term, AND together 64-bit (cr & care) == value
//     compares across the lane block; accumulate per-lane match bits.
//   3. Early-out when every lane has selected something.
// SSE2 has no 64-bit integer compare; eq64 builds one from the 32-bit
// compare ANDed with its half-swapped self.

#include "sla/batch.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pscp::sla::detail {

#if defined(__x86_64__) || defined(__i386__)

namespace {

using Flat = BatchedSla::Flat;

__attribute__((target("avx2"))) uint32_t maskKernelAvx2(const Flat& flat,
                                                        const uint64_t* words,
                                                        size_t laneStride,
                                                        size_t laneBase) {
  const uint64_t* base = words + laneBase;
  __m256i anyEvent = _mm256_setzero_si256();
  for (size_t w = 0; w < flat.crWords; ++w) {
    if (flat.eventMasks[w] == 0) continue;
    const __m256i crw = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + w * laneStride));
    anyEvent = _mm256_or_si256(
        anyEvent, _mm256_and_si256(crw, _mm256_set1_epi64x(static_cast<long long>(
                                            flat.eventMasks[w]))));
  }
  const auto noEventLanes = static_cast<uint32_t>(_mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpeq_epi64(anyEvent, _mm256_setzero_si256()))));
  const uint32_t eventLanes = 0xFu & ~noEventLanes;

  uint32_t selected = 0;
  for (const Flat::Term& term : flat.terms) {
    if (term.needsEvent != 0 && eventLanes == 0) continue;
    __m256i acc = _mm256_set1_epi64x(-1);
    const uint32_t end = term.firstMask + term.maskCount;
    for (uint32_t m = term.firstMask; m < end; ++m) {
      const __m256i crw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          base + static_cast<size_t>(flat.maskWord[m]) * laneStride));
      const __m256i masked = _mm256_and_si256(
          crw, _mm256_set1_epi64x(static_cast<long long>(flat.maskCare[m])));
      acc = _mm256_and_si256(
          acc, _mm256_cmpeq_epi64(masked, _mm256_set1_epi64x(static_cast<long long>(
                                      flat.maskValue[m]))));
      if (_mm256_testz_si256(acc, acc) != 0) break;  // every lane rejected
    }
    selected |= static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(acc)));
    if (selected == 0xFu) break;  // every lane already selected
  }
  return selected;
}

// 64-bit equality out of SSE2 parts: 32-bit compare ANDed with its
// half-swapped self is all-ones per 64-bit lane iff both halves matched.
__attribute__((target("sse2"))) __m128i eq64(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

__attribute__((target("sse2"))) uint32_t maskKernelSse2(const Flat& flat,
                                                        const uint64_t* words,
                                                        size_t laneStride,
                                                        size_t laneBase) {
  const uint64_t* base = words + laneBase;
  __m128i anyEvent = _mm_setzero_si128();
  for (size_t w = 0; w < flat.crWords; ++w) {
    if (flat.eventMasks[w] == 0) continue;
    const __m128i crw = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + w * laneStride));
    anyEvent = _mm_or_si128(
        anyEvent, _mm_and_si128(crw, _mm_set1_epi64x(static_cast<long long>(
                                         flat.eventMasks[w]))));
  }
  const auto noEventLanes = static_cast<uint32_t>(
      _mm_movemask_pd(_mm_castsi128_pd(eq64(anyEvent, _mm_setzero_si128()))));
  const uint32_t eventLanes = 0x3u & ~noEventLanes;

  uint32_t selected = 0;
  for (const Flat::Term& term : flat.terms) {
    if (term.needsEvent != 0 && eventLanes == 0) continue;
    __m128i acc = _mm_set1_epi64x(-1);
    const uint32_t end = term.firstMask + term.maskCount;
    for (uint32_t m = term.firstMask; m < end; ++m) {
      const __m128i crw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          base + static_cast<size_t>(flat.maskWord[m]) * laneStride));
      const __m128i masked = _mm_and_si128(
          crw, _mm_set1_epi64x(static_cast<long long>(flat.maskCare[m])));
      acc = _mm_and_si128(acc, eq64(masked, _mm_set1_epi64x(static_cast<long long>(
                                       flat.maskValue[m]))));
      if (_mm_movemask_epi8(acc) == 0) break;  // every lane rejected
    }
    selected |= static_cast<uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(acc)));
    if (selected == 0x3u) break;  // every lane already selected
  }
  return selected;
}

}  // namespace

BatchedSla::MaskKernel maskKernelFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2: return maskKernelAvx2;
    case SimdLevel::kSse2: return maskKernelSse2;
    case SimdLevel::kScalar: return maskKernelScalar;
  }
  return maskKernelScalar;
}

#else  // non-x86: scalar only

BatchedSla::MaskKernel maskKernelFor(SimdLevel level) {
  return level == SimdLevel::kScalar ? maskKernelScalar : nullptr;
}

#endif

}  // namespace pscp::sla::detail
