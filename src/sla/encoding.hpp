// State encoding and Configuration Register layout (paper Sec. 2).
//
// "The efficient state encoding of a chart involves the generation of
//  exclusivity sets, which was first described in [Drusinsky-Yoresh, IEEE
//  TCAD 1991]. The state information, together with the encoded events and
//  conditions, forms the configuration register (CR) of the chart."
//
// An *exclusivity set* is a group of states of which at most one can be
// active in any configuration; the whole set shares one binary-encoded CR
// field (code 0 = none of them active). Events and conditions get one CR
// bit each. The CR layout is the contract between the SLA (which decodes
// it), the scheduler (which copies the condition part into the TEP
// condition caches), and the TEPs (whose EVSET/CSET/CCLR/CTST/STST
// instructions address CR indices).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "statechart/chart.hpp"

namespace pscp::sla {

/// True when `a` and `b` can never be active together: their lowest common
/// ancestor is an OR state and neither contains the other.
[[nodiscard]] bool mutuallyExclusive(const statechart::Chart& chart,
                                     statechart::StateId a, statechart::StateId b);

/// Greedy partition of all non-root states into exclusivity sets.
[[nodiscard]] std::vector<std::vector<statechart::StateId>> exclusivitySets(
    const statechart::Chart& chart);

struct StateField {
  std::vector<statechart::StateId> states;  ///< member i encodes as i+1
  int baseBit = 0;                          ///< position in the CR state part
  int width = 1;                            ///< bitsFor(states.size() + 1)
};

/// Complete Configuration Register layout.
class CrLayout {
 public:
  explicit CrLayout(const statechart::Chart& chart);

  [[nodiscard]] int eventBit(const std::string& name) const;
  [[nodiscard]] int conditionBit(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, int>& eventBits() const { return events_; }
  [[nodiscard]] const std::map<std::string, int>& conditionBits() const {
    return conditions_;
  }

  [[nodiscard]] const std::vector<StateField>& stateFields() const { return fields_; }
  /// (field index, code within field) of a state; code 0 means inactive.
  [[nodiscard]] std::pair<int, int> stateCode(statechart::StateId s) const;

  [[nodiscard]] int eventCount() const { return static_cast<int>(events_.size()); }
  [[nodiscard]] int conditionCount() const { return static_cast<int>(conditions_.size()); }
  /// Bit offsets of the three CR parts: [events | conditions | state].
  [[nodiscard]] int conditionBase() const { return eventCount(); }
  [[nodiscard]] int stateBase() const { return eventCount() + conditionCount(); }
  [[nodiscard]] int totalBits() const { return totalBits_; }

  /// Bits of the state field that `s` belongs to, as absolute CR indices.
  [[nodiscard]] std::vector<int> stateFieldBits(statechart::StateId s) const;

  [[nodiscard]] std::string describe(const statechart::Chart& chart) const;

 private:
  std::map<std::string, int> events_;
  std::map<std::string, int> conditions_;
  std::vector<StateField> fields_;
  std::map<statechart::StateId, std::pair<int, int>> codes_;
  int totalBits_ = 0;
};

}  // namespace pscp::sla
