// The Statechart Logic Array (paper Fig. 1, [Buchenrieder/Pyttel/Veith,
// EURO-DAC'96]): a two-level (AND/OR) logic block that decodes the
// Configuration Register and produces one select signal per transition.
// The select signals drive the Transition Address Table; the scheduler
// dispatches selected transitions to the TEPs.
//
// A transition is selected when (source state active) AND (trigger
// expression over event bits) AND (guard expression over condition bits).
// The boolean expressions are expanded to sum-of-products over CR
// literals; product-term and literal counts feed the area model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/binding.hpp"
#include "hwlib/arch_config.hpp"
#include "sla/encoding.hpp"
#include "statechart/chart.hpp"

namespace pscp::sla {

/// One literal over a CR bit: bit value must equal `polarity`.
struct Literal {
  int bit = 0;
  bool polarity = true;

  [[nodiscard]] bool operator==(const Literal&) const = default;
};

/// AND of literals.
struct ProductTerm {
  std::vector<Literal> literals;

  [[nodiscard]] bool matches(const std::vector<bool>& crBits) const;
};

/// Per-selection evaluation statistics (observability): how much of the
/// array a CR decode exercised. Filled by select() when requested; the
/// selection result is identical with or without stats.
struct SelectStats {
  int64_t termsEvaluated = 0;     ///< product terms tested
  int64_t literalsEvaluated = 0;  ///< literals of those terms
};

/// The synthesized logic array.
class Sla {
 public:
  Sla(const statechart::Chart& chart, const CrLayout& layout);

  /// Enabled transitions for a CR value (no conflict resolution — that is
  /// the scheduler's job). Pass `stats` to collect evaluation counts.
  [[nodiscard]] std::vector<statechart::TransitionId> select(
      const std::vector<bool>& crBits, SelectStats* stats = nullptr) const;

  [[nodiscard]] int productTermCount() const;
  [[nodiscard]] int literalCount() const;
  [[nodiscard]] const std::vector<std::vector<ProductTerm>>& transitionTerms() const {
    return terms_;
  }
  [[nodiscard]] const CrLayout& layout() const { return layout_; }

  /// BLIF description of the array ("the frontend also generates a BLIF
  /// description of the SLA ... converted to VHDL").
  [[nodiscard]] std::string emitBlif(const std::string& modelName = "sla") const;
  /// Structural VHDL generated from the same netlist.
  [[nodiscard]] std::string emitVhdl(const std::string& entityName = "sla") const;

  /// Hardware stats consumed by the area model.
  [[nodiscard]] hwlib::ChartHardwareStats hardwareStats(
      const statechart::Chart& chart) const;

 private:
  const statechart::Chart& chart_;
  CrLayout layout_;
  /// terms_[t] = product terms whose OR is transition t's select signal.
  std::vector<std::vector<ProductTerm>> terms_;
};

/// Build the compiler-facing name binding from a chart + CR layout:
/// events/conditions to CR indices, states to their StateId (the machine's
/// STST exposes configuration bits by state id), ports to bus addresses.
[[nodiscard]] compiler::HardwareBinding makeBinding(const statechart::Chart& chart,
                                                    const CrLayout& layout);

}  // namespace pscp::sla
