// The Statechart Logic Array (paper Fig. 1, [Buchenrieder/Pyttel/Veith,
// EURO-DAC'96]): a two-level (AND/OR) logic block that decodes the
// Configuration Register and produces one select signal per transition.
// The select signals drive the Transition Address Table; the scheduler
// dispatches selected transitions to the TEPs.
//
// A transition is selected when (source state active) AND (trigger
// expression over event bits) AND (guard expression over condition bits).
// The boolean expressions are expanded to sum-of-products over CR
// literals; product-term and literal counts feed the area model.
//
// Mask compilation: the hardware PLA decodes the whole CR in a single
// array access, so the software model must not be literal-by-literal. At
// construction each product term is compiled to per-word (careMask,
// valueMask) pairs over the packed CR (support/bits BitVec) — a term
// matches when (word & care) == value for every referenced word — and the
// terms are bucketed by source-state field code and trigger-event bit, so
// select() only visits transitions that can possibly fire in the current
// configuration. The literal form is retained: the BLIF/VHDL emitters,
// the area model, and the retained reference selector all read it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/binding.hpp"
#include "hwlib/arch_config.hpp"
#include "sla/encoding.hpp"
#include "statechart/chart.hpp"
#include "support/bits.hpp"

namespace pscp::sla {

/// One literal over a CR bit: bit value must equal `polarity`.
struct Literal {
  int bit = 0;
  bool polarity = true;

  [[nodiscard]] bool operator==(const Literal&) const = default;
};

/// AND of literals. `masks` is the packed compilation of `literals` (one
/// entry per CR word the term constrains), built by compileMasks().
struct ProductTerm {
  struct WordMask {
    uint32_t word = 0;    ///< CR word index
    uint64_t care = 0;    ///< bits this term constrains in that word
    uint64_t value = 0;   ///< required values of the constrained bits
  };

  std::vector<Literal> literals;
  std::vector<WordMask> masks;

  /// Reference (literal-by-literal) evaluation — the pre-mask-compilation
  /// semantics, retained as the oracle for the packed path.
  [[nodiscard]] bool matches(const std::vector<bool>& crBits) const;

  /// Packed evaluation: a handful of AND/compare word ops.
  [[nodiscard]] bool matchesPacked(const BitVec& cr) const {
    for (const WordMask& m : masks)
      if ((cr.word(m.word) & m.care) != m.value) return false;
    return true;
  }

  /// Build `masks` from `literals` for a CR of `totalBits` bits.
  void compileMasks(int totalBits);
};

/// Per-selection evaluation statistics (observability): the work the
/// hardware PLA performs for one CR decode. The PLA evaluates its entire
/// AND plane on every access, so these count *all* product terms and
/// literals of the array per select() call — not the subset the pruned
/// software path happens to visit. The selection result is identical with
/// or without stats.
struct SelectStats {
  int64_t termsEvaluated = 0;     ///< product terms of the full array
  int64_t literalsEvaluated = 0;  ///< literals of the full array
};

/// The synthesized logic array.
class Sla {
 public:
  Sla(const statechart::Chart& chart, const CrLayout& layout);

  /// Enabled transitions for a CR value (no conflict resolution — that is
  /// the scheduler's job), ascending by transition id. Pass `stats` to
  /// collect the full-PLA decode counts. Packed hot path: consults the
  /// activity index (source-state field code, trigger-event bit) and
  /// evaluates mask-compiled terms word-parallel.
  [[nodiscard]] std::vector<statechart::TransitionId> select(
      const BitVec& cr, SelectStats* stats = nullptr) const;

  /// In-place variant of the packed select: clears `out` (keeping its
  /// capacity) and fills it with the selection. Steady-state callers that
  /// reuse the same scratch vector never touch the allocator.
  void selectInto(const BitVec& cr, std::vector<statechart::TransitionId>& out,
                  SelectStats* stats = nullptr) const;

  /// Convenience overload for callers still holding a std::vector<bool>.
  [[nodiscard]] std::vector<statechart::TransitionId> select(
      const std::vector<bool>& crBits, SelectStats* stats = nullptr) const;

  /// The retained literal-by-literal selector (pre-packing semantics):
  /// visits every transition and every product term until a hit. Oracle
  /// for the randomized-CR property test and baseline for the microbench.
  [[nodiscard]] std::vector<statechart::TransitionId> selectReference(
      const std::vector<bool>& crBits) const;

  [[nodiscard]] int productTermCount() const;
  [[nodiscard]] int literalCount() const;
  [[nodiscard]] const std::vector<std::vector<ProductTerm>>& transitionTerms() const {
    return terms_;
  }
  [[nodiscard]] const CrLayout& layout() const { return layout_; }

  /// BLIF description of the array ("the frontend also generates a BLIF
  /// description of the SLA ... converted to VHDL").
  [[nodiscard]] std::string emitBlif(const std::string& modelName = "sla") const;
  /// Structural VHDL generated from the same netlist.
  [[nodiscard]] std::string emitVhdl(const std::string& entityName = "sla") const;

  /// Hardware stats consumed by the area model.
  [[nodiscard]] hwlib::ChartHardwareStats hardwareStats(
      const statechart::Chart& chart) const;

 private:
  /// Dispatch gate of one transition in the activity index.
  struct Gate {
    int field = -1;            ///< source-state exclusivity field
    int code = 0;              ///< required field code (source active)
    int requiredEventBit = -1; ///< event bit positive in every term, or -1
  };

  const statechart::Chart& chart_;
  CrLayout layout_;
  /// terms_[t] = product terms whose OR is transition t's select signal.
  std::vector<std::vector<ProductTerm>> terms_;

  // Activity index: activityIndex_[field][code] lists the transitions whose
  // source state encodes as `code` in `field` — the only transitions a CR
  // holding that code can select.
  std::vector<Gate> gates_;
  std::vector<std::vector<std::vector<statechart::TransitionId>>> activityIndex_;
  int totalTerms_ = 0;     ///< cached productTermCount()
  int totalLiterals_ = 0;  ///< cached literalCount()
};

/// Build the compiler-facing name binding from a chart + CR layout:
/// events/conditions to CR indices, states to their StateId (the machine's
/// STST exposes configuration bits by state id), ports to bus addresses.
[[nodiscard]] compiler::HardwareBinding makeBinding(const statechart::Chart& chart,
                                                    const CrLayout& layout);

}  // namespace pscp::sla
