#include "sla/batch.hpp"

namespace pscp::sla {

namespace detail {

uint32_t maskKernelScalar(const BatchedSla::Flat& flat, const uint64_t* words,
                          size_t laneStride, size_t laneBase) {
  const uint64_t* base = words + laneBase;
  uint64_t anyEvent = 0;
  for (size_t w = 0; w < flat.crWords; ++w) {
    if (flat.eventMasks[w] == 0) continue;
    anyEvent |= base[w * laneStride] & flat.eventMasks[w];
  }
  for (const BatchedSla::Flat::Term& term : flat.terms) {
    if (term.needsEvent != 0 && anyEvent == 0) continue;
    bool hit = true;
    const uint32_t end = term.firstMask + term.maskCount;
    for (uint32_t m = term.firstMask; m < end; ++m) {
      if ((base[static_cast<size_t>(flat.maskWord[m]) * laneStride] &
           flat.maskCare[m]) != flat.maskValue[m]) {
        hit = false;
        break;
      }
    }
    if (hit) return 1;
  }
  return 0;
}

}  // namespace detail

BatchedSla::BatchedSla(const Sla& sla, SimdLevel level) {
  kernel_ = detail::maskKernelFor(level);
  if (kernel_ == nullptr) {
    // Build without the vector kernels (non-x86): everything runs scalar.
    level = SimdLevel::kScalar;
    kernel_ = detail::maskKernelScalar;
  }
  level_ = level;

  const CrLayout& layout = sla.layout();
  flat_.crWords = static_cast<size_t>((layout.totalBits() + 63) / 64);
  const int eventCount = layout.eventCount();
  flat_.eventMasks.assign(flat_.crWords, 0);
  for (int b = 0; b < eventCount; ++b)
    flat_.eventMasks[static_cast<size_t>(b) / 64] |= uint64_t{1} << (b % 64);

  const auto& transitionTerms = sla.transitionTerms();
  for (size_t t = 0; t < transitionTerms.size(); ++t) {
    for (const ProductTerm& pt : transitionTerms[t]) {
      Flat::Term term;
      term.firstMask = static_cast<uint32_t>(flat_.maskWord.size());
      term.maskCount = static_cast<uint32_t>(pt.masks.size());
      term.transition = static_cast<int32_t>(t);
      for (const Literal& lit : pt.literals) {
        if (lit.polarity && lit.bit < eventCount) {
          term.needsEvent = 1;
          break;
        }
      }
      for (const ProductTerm::WordMask& m : pt.masks) {
        flat_.maskWord.push_back(m.word);
        flat_.maskCare.push_back(m.care);
        flat_.maskValue.push_back(m.value);
      }
      flat_.terms.push_back(term);
    }
  }
}

uint64_t BatchedSla::selectedLanes(const CrSoa& soa, size_t laneBase,
                                   size_t laneCount) const {
  const auto width = static_cast<size_t>(laneWidth());
  uint64_t result = 0;
  size_t l = 0;
  for (; l + width <= laneCount; l += width) {
    result |= static_cast<uint64_t>(
                  kernel_(flat_, soa.words, soa.laneStride, laneBase + l))
              << l;
  }
  // Tail lanes below the vector width run scalar: a full-width kernel call
  // here would read past the populated lanes of the last block.
  for (; l < laneCount; ++l) {
    result |= static_cast<uint64_t>(detail::maskKernelScalar(
                  flat_, soa.words, soa.laneStride, laneBase + l))
              << l;
  }
  return result;
}

void BatchedSla::selectLanesInto(const CrSoa& soa, size_t laneBase,
                                 size_t laneCount,
                                 std::vector<statechart::TransitionId>* outs) const {
  for (size_t l = 0; l < laneCount; ++l) {
    std::vector<statechart::TransitionId>& out = outs[l];
    out.clear();
    const uint64_t* base = soa.words + laneBase + l;
    uint64_t anyEvent = 0;
    for (size_t w = 0; w < flat_.crWords; ++w) {
      if (flat_.eventMasks[w] == 0) continue;
      anyEvent |= base[w * soa.laneStride] & flat_.eventMasks[w];
    }
    // Terms are grouped by ascending transition; one hit per transition
    // suffices (select signals are ORs), so skip a transition's remaining
    // terms once it is selected — output stays ascending, matching
    // Sla::selectInto exactly.
    int32_t lastSelected = -1;
    for (const Flat::Term& term : flat_.terms) {
      if (term.transition == lastSelected) continue;
      if (term.needsEvent != 0 && anyEvent == 0) continue;
      bool hit = true;
      const uint32_t end = term.firstMask + term.maskCount;
      for (uint32_t m = term.firstMask; m < end; ++m) {
        if ((base[static_cast<size_t>(flat_.maskWord[m]) * soa.laneStride] &
             flat_.maskCare[m]) != flat_.maskValue[m]) {
          hit = false;
          break;
        }
      }
      if (hit) {
        out.push_back(static_cast<statechart::TransitionId>(term.transition));
        lastSelected = term.transition;
      }
    }
  }
}

}  // namespace pscp::sla
