// Batched (SoA) evaluation of the mask-compiled SLA.
//
// The hardware PLA decodes one CR per access; a fleet holds thousands of
// CRs over the *same* array. When those CRs are packed structure-of-arrays
// (word w of lane l at words[w * laneStride + l], lanes contiguous), one
// product-term word test — (cr & careMask) == valueMask — becomes a single
// vector compare across 2 (SSE2) or 4 (AVX2) instances, and the whole
// AND plane sweeps a lane block in one pass.
//
// BatchedSla is the flattened compile product: every transition's product
// terms in ascending transition order, each term a (word, care, value)
// mask run plus a needs-event flag. Two evaluators share it:
//   - selectedLanes(): per-lane "would select() return anything" bitmask —
//     the fleet's quiescence test. Runs the dispatched vector kernel on
//     full lane blocks and the scalar loop on the tail; allocation-free.
//   - selectLanesInto(): per-lane selection lists, bit-identical to
//     Sla::selectInto on every lane (the property-test surface).
// Both skip event-gated terms wholesale when no lane in the block has any
// event bit sampled — the dominant case, since event bits live only
// between sampling and decode and a quiescent fleet samples none.
//
// Kernel selection: construction latches support/simd's activeSimdLevel()
// (PSCP_SIMD caps it), or a test pins an explicit level. Every level is
// bit-identical by contract; tests/sla_batch_test.cpp holds all of them to
// the scalar selectInto oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "sla/sla.hpp"
#include "support/simd.hpp"

namespace pscp::sla {

/// Borrowed view of an SoA CR arena: word w of lane l at
/// words[w * laneStride + l]. The arena owner guarantees laneStride lanes
/// are readable per word row (padding lanes included).
struct CrSoa {
  const uint64_t* words = nullptr;
  size_t laneStride = 0;
  size_t wordCount = 0;
};

class BatchedSla {
 public:
  /// Flattened AND plane (exposed for the target-attribute kernel TU).
  struct Flat {
    struct Term {
      uint32_t firstMask = 0;  ///< index into maskWord/maskCare/maskValue
      uint32_t maskCount = 0;
      int32_t transition = 0;
      /// Term has a positive event literal: it cannot match a CR with no
      /// event bits sampled, so a block with no events skips it outright.
      uint8_t needsEvent = 0;
    };
    std::vector<uint32_t> maskWord;
    std::vector<uint64_t> maskCare;
    std::vector<uint64_t> maskValue;
    std::vector<Term> terms;  ///< ascending by transition id
    /// Per CR word, the subset of bits holding events (tail-masked); used
    /// to compute the per-lane "any event sampled" predicate.
    std::vector<uint64_t> eventMasks;
    size_t crWords = 0;
  };

  /// Kernel contract: evaluate exactly simdLaneWidth(level) lanes starting
  /// at laneBase; bit l of the result = lane (laneBase + l) selected at
  /// least one transition.
  using MaskKernel = uint32_t (*)(const Flat& flat, const uint64_t* words,
                                  size_t laneStride, size_t laneBase);

  explicit BatchedSla(const Sla& sla) : BatchedSla(sla, activeSimdLevel()) {}
  BatchedSla(const Sla& sla, SimdLevel level);

  [[nodiscard]] SimdLevel level() const { return level_; }
  /// Lanes one vector op covers (1 scalar / 2 SSE2 / 4 AVX2).
  [[nodiscard]] int laneWidth() const { return simdLaneWidth(level_); }

  /// Per-lane quiescence predicate over lanes [laneBase, laneBase +
  /// laneCount): bit l set when lane (laneBase + l) selects at least one
  /// transition. laneCount <= 64. Full vector-width blocks go through the
  /// dispatched kernel; the tail runs the scalar loop. Never allocates.
  [[nodiscard]] uint64_t selectedLanes(const CrSoa& soa, size_t laneBase,
                                       size_t laneCount) const;

  /// Batched selectInto: fills outs[l] (cleared, capacity kept) with
  /// exactly what Sla::selectInto would return for lane (laneBase + l)'s
  /// CR — ascending transition ids.
  void selectLanesInto(const CrSoa& soa, size_t laneBase, size_t laneCount,
                       std::vector<statechart::TransitionId>* outs) const;

  [[nodiscard]] const Flat& flat() const { return flat_; }

 private:
  Flat flat_;
  SimdLevel level_ = SimdLevel::kScalar;
  MaskKernel kernel_ = nullptr;
};

namespace detail {

/// Scalar reference kernel (also the tail path of every vector level).
uint32_t maskKernelScalar(const BatchedSla::Flat& flat, const uint64_t* words,
                          size_t laneStride, size_t laneBase);

/// The kernel for `level`, or scalar when the build lacks x86 intrinsics.
/// Defined in batch_kernels.cpp (the only TU built with target attributes).
[[nodiscard]] BatchedSla::MaskKernel maskKernelFor(SimdLevel level);

}  // namespace detail

}  // namespace pscp::sla
