#include "sla/encoding.hpp"

#include <algorithm>

#include "support/bits.hpp"

namespace pscp::sla {

using statechart::Chart;
using statechart::StateId;

bool mutuallyExclusive(const Chart& chart, StateId a, StateId b) {
  if (a == b) return false;
  if (chart.isAncestor(a, b) || chart.isAncestor(b, a)) return false;
  const StateId lca = chart.lowestCommonAncestor(a, b);
  return chart.state(lca).kind == statechart::StateKind::Or;
}

std::vector<std::vector<StateId>> exclusivitySets(const Chart& chart) {
  // Greedy set cover in preorder: deeper/later states join the first set
  // whose members are all exclusive with them. Preorder keeps siblings of
  // one OR state together, which is the intent of the Drusinsky encoding.
  std::vector<std::vector<StateId>> sets;
  for (StateId s : chart.subtree(chart.root())) {
    if (s == chart.root()) continue;
    bool placed = false;
    for (auto& set : sets) {
      const bool ok = std::all_of(set.begin(), set.end(), [&](StateId other) {
        return mutuallyExclusive(chart, s, other);
      });
      if (ok) {
        set.push_back(s);
        placed = true;
        break;
      }
    }
    if (!placed) sets.push_back({s});
  }
  return sets;
}

CrLayout::CrLayout(const Chart& chart) {
  // Event bits are absolute CR positions; condition bits are relative to
  // the condition part (the TEP condition caches are indexed from zero).
  int eventBit = 0;
  for (const auto& [name, decl] : chart.events()) events_[name] = eventBit++;
  int condBit = 0;
  for (const auto& [name, decl] : chart.conditions()) conditions_[name] = condBit++;

  int stateBit = 0;
  for (const std::vector<StateId>& set : exclusivitySets(chart)) {
    StateField field;
    field.states = set;
    field.baseBit = stateBit;
    field.width = bitsFor(static_cast<uint32_t>(set.size()) + 1);
    for (size_t i = 0; i < set.size(); ++i)
      codes_[set[i]] = {static_cast<int>(fields_.size()), static_cast<int>(i) + 1};
    stateBit += field.width;
    fields_.push_back(std::move(field));
  }
  totalBits_ = eventCount() + conditionCount() + stateBit;
}

int CrLayout::eventBit(const std::string& name) const {
  auto it = events_.find(name);
  if (it == events_.end()) fail("CR has no event '%s'", name.c_str());
  return it->second;
}

int CrLayout::conditionBit(const std::string& name) const {
  auto it = conditions_.find(name);
  if (it == conditions_.end()) fail("CR has no condition '%s'", name.c_str());
  return it->second;
}

std::pair<int, int> CrLayout::stateCode(StateId s) const {
  auto it = codes_.find(s);
  if (it == codes_.end()) fail("state %d has no CR code (root?)", s);
  return it->second;
}

std::vector<int> CrLayout::stateFieldBits(StateId s) const {
  const auto [fieldIndex, code] = stateCode(s);
  (void)code;
  const StateField& f = fields_[static_cast<size_t>(fieldIndex)];
  std::vector<int> bits;
  for (int i = 0; i < f.width; ++i) bits.push_back(stateBase() + f.baseBit + i);
  return bits;
}

std::string CrLayout::describe(const Chart& chart) const {
  std::string out = strfmt("CR: %d bits (%d events, %d conditions, %d state bits)\n",
                           totalBits(), eventCount(), conditionCount(),
                           totalBits() - stateBase());
  for (size_t i = 0; i < fields_.size(); ++i) {
    out += strfmt("  field %zu (%d bits):", i, fields_[i].width);
    for (size_t j = 0; j < fields_[i].states.size(); ++j)
      out += strfmt(" %s=%zu", chart.state(fields_[i].states[j]).name.c_str(), j + 1);
    out += "\n";
  }
  return out;
}

}  // namespace pscp::sla
