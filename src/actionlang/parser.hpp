// Parser for the extended-C action language (paper Fig. 2b).
//
// Grammar sketch (C subset with bit-width extensions):
//
//   program   := topDecl*
//   topDecl   := structDef | enumDef | globalVar | function
//   structDef := 'typedef' 'struct' ['{' field* '}'] Ident ';'
//              | 'struct' Ident '{' field* '}' ';'
//   field     := type Ident ['[' constExpr ']'] ';'
//   enumDef   := 'enum' Ident '{' enumerator (',' enumerator)* '}' ';'
//   type      := ('int'|'uint') [':' Number] | 'void' | 'event' | 'cond'
//              | StructName
//   globalVar := type Ident ['[' constExpr ']'] ['=' init] ';'
//   init      := constExpr | '{' init (',' init)* '}'
//   function  := type Ident '(' [param (',' param)*] ')' block
//   stmt      := block | varDecl | 'if' '(' e ')' stmt ['else' stmt]
//              | 'while' '(' e ')' 'bound' Number stmt
//              | 'return' [e] ';' | lvalue '=' e ';' | call ';'
//
// `int` with no width is int:16, matching the basic TEP data width times
// two (the paper's example uses 16-bit arithmetic for motor parameters);
// `while` requires a designer-asserted iteration bound so that the static
// timing analysis (Sec. 4) can derive WCETs from the assembler code.
#pragma once

#include <string_view>

#include "actionlang/ast.hpp"

namespace pscp::actionlang {

/// Default width of a plain `int` / `uint`.
inline constexpr int kDefaultIntWidth = 16;

/// Parse only (no semantic checking); use checkProgram afterwards.
[[nodiscard]] Program parseProgramText(std::string_view src,
                                       const std::string& file = "<actions>");

/// Bind names, compute expression types, fold constants, verify that the
/// call graph is recursion-free and that all loops carry bounds.
void checkProgram(Program& program);

/// Convenience: parse + check.
[[nodiscard]] Program parseActionSource(std::string_view src,
                                        const std::string& file = "<actions>");

}  // namespace pscp::actionlang
