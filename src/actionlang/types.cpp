#include "actionlang/types.hpp"

namespace pscp::actionlang {

TypePtr Type::voidType() {
  static const TypePtr t = std::shared_ptr<Type>(new Type());
  return t;
}

TypePtr Type::intType(int width, bool isSigned) {
  if (width < 1 || width > kMaxWidth)
    fail("integer width %d out of range [1, %d]", width, kMaxWidth);
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::Int;
  t->width_ = width;
  t->signed_ = isSigned;
  return t;
}

TypePtr Type::eventType() {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::Event;
  return t;
}

TypePtr Type::condType() {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::Cond;
  return t;
}

TypePtr Type::structType(std::string name,
                         std::vector<std::pair<std::string, TypePtr>> fields) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::Struct;
  t->name_ = std::move(name);
  t->fields_ = std::move(fields);
  return t;
}

TypePtr Type::arrayType(TypePtr element, int count) {
  if (count < 1) fail("array size must be positive (got %d)", count);
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::Array;
  t->element_ = std::move(element);
  t->count_ = count;
  return t;
}

int Type::byteSize() const {
  switch (kind_) {
    case TypeKind::Void:
    case TypeKind::Event:
    case TypeKind::Cond:
      return 0;
    case TypeKind::Int:
      // Scalars occupy their *container* (8/16/32 bits): the TEP data bus
      // moves whole containers, and odd widths are kept sign/zero-extended
      // inside them.
      return width_ <= 8 ? 1 : width_ <= 16 ? 2 : 4;
    case TypeKind::Struct: {
      int total = 0;
      for (const auto& [fname, ftype] : fields_) total += ftype->byteSize();
      return total;
    }
    case TypeKind::Array:
      return element_->byteSize() * count_;
  }
  return 0;
}

int Type::fieldOffset(const std::string& field) const {
  PSCP_ASSERT(kind_ == TypeKind::Struct);
  int offset = 0;
  for (const auto& [fname, ftype] : fields_) {
    if (fname == field) return offset;
    offset += ftype->byteSize();
  }
  fail("struct '%s' has no field '%s'", name_.c_str(), field.c_str());
}

TypePtr Type::fieldType(const std::string& field) const {
  PSCP_ASSERT(kind_ == TypeKind::Struct);
  for (const auto& [fname, ftype] : fields_)
    if (fname == field) return ftype;
  fail("struct '%s' has no field '%s'", name_.c_str(), field.c_str());
}

std::string Type::str() const {
  switch (kind_) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Int:
      return strfmt("%s:%d", signed_ ? "int" : "uint", width_);
    case TypeKind::Struct:
      return name_;
    case TypeKind::Array:
      return element_->str() + strfmt("[%d]", count_);
    case TypeKind::Event:
      return "event";
    case TypeKind::Cond:
      return "cond";
  }
  return "?";
}

bool Type::same(const Type& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::Void:
    case TypeKind::Event:
    case TypeKind::Cond:
      return true;
    case TypeKind::Int:
      return width_ == other.width_ && signed_ == other.signed_;
    case TypeKind::Struct:
      return name_ == other.name_;
    case TypeKind::Array:
      return count_ == other.count_ && element_->same(*other.element_);
  }
  return false;
}

}  // namespace pscp::actionlang
