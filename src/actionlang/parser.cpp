#include "actionlang/parser.hpp"

#include <map>

#include "actionlang/lexer.hpp"

namespace pscp::actionlang {
namespace {

class Parser {
 public:
  Parser(std::string_view src, const std::string& file)
      : toks_(lexActionSource(src, file)) {}

  Program parse() {
    while (peek().kind != TokKind::End) parseTopDecl();
    return std::move(program_);
  }

 private:
  // ------------------------------------------------------------- plumbing
  [[nodiscard]] const Token& peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }

  Token take() {
    Token t = peek();
    if (pos_ < toks_.size() - 1) ++pos_;
    return t;
  }

  Token expect(TokKind k) {
    if (peek().kind != k)
      failAt(peek().loc, "expected %s, found '%s'", tokKindName(k), peek().text.c_str());
    return take();
  }

  bool accept(TokKind k) {
    if (peek().kind != k) return false;
    take();
    return true;
  }

  // ----------------------------------------------------------------- types
  [[nodiscard]] bool peekIsType() const {
    switch (peek().kind) {
      case TokKind::KwInt:
      case TokKind::KwUint:
      case TokKind::KwVoid:
      case TokKind::KwEvent:
      case TokKind::KwCond:
        return true;
      case TokKind::Ident:
        return program_.structs.count(peek().text) != 0;
      default:
        return false;
    }
  }

  TypePtr parseType() {
    const Token t = take();
    switch (t.kind) {
      case TokKind::KwVoid:
        return Type::voidType();
      case TokKind::KwEvent:
        return Type::eventType();
      case TokKind::KwCond:
        return Type::condType();
      case TokKind::KwInt:
      case TokKind::KwUint: {
        int width = kDefaultIntWidth;
        if (accept(TokKind::Colon)) {
          const Token w = expect(TokKind::Number);
          width = static_cast<int>(w.value);
          if (width < 1 || width > kMaxWidth)
            failAt(w.loc, "integer width %d out of range [1, %d]", width, kMaxWidth);
        }
        return Type::intType(width, t.kind == TokKind::KwInt);
      }
      case TokKind::Ident: {
        auto it = program_.structs.find(t.text);
        if (it == program_.structs.end())
          failAt(t.loc, "unknown type '%s'", t.text.c_str());
        return it->second;
      }
      default:
        failAt(t.loc, "expected a type, found '%s'", t.text.c_str());
    }
  }

  /// Optional `[N]` array suffix on a declarator.
  TypePtr parseArraySuffix(TypePtr base) {
    while (accept(TokKind::LBracket)) {
      const Token n = expect(TokKind::Number);
      expect(TokKind::RBracket);
      base = Type::arrayType(std::move(base), static_cast<int>(n.value));
    }
    return base;
  }

  // ------------------------------------------------------------- top level
  void parseTopDecl() {
    if (peek().kind == TokKind::KwTypedef || peek().kind == TokKind::KwStruct) {
      parseStructDef();
      return;
    }
    if (peek().kind == TokKind::KwEnum) {
      parseEnumDef();
      return;
    }
    if (!peekIsType())
      failAt(peek().loc, "expected declaration, found '%s'", peek().text.c_str());
    TypePtr type = parseType();
    const Token name = expect(TokKind::Ident);
    if (peek().kind == TokKind::LParen) {
      parseFunction(std::move(type), name);
    } else {
      parseGlobalVar(std::move(type), name);
    }
  }

  void parseStructDef() {
    const SourceLoc startLoc = peek().loc;
    const bool isTypedef = accept(TokKind::KwTypedef);
    expect(TokKind::KwStruct);
    std::string tag;
    if (peek().kind == TokKind::Ident) tag = take().text;
    std::vector<std::pair<std::string, TypePtr>> fields;
    expect(TokKind::LBrace);
    while (peek().kind != TokKind::RBrace) {
      TypePtr ftype = parseType();
      const Token fname = expect(TokKind::Ident);
      ftype = parseArraySuffix(std::move(ftype));
      expect(TokKind::Semi);
      fields.emplace_back(fname.text, std::move(ftype));
    }
    expect(TokKind::RBrace);
    std::string name = tag;
    if (isTypedef) {
      name = expect(TokKind::Ident).text;
    }
    expect(TokKind::Semi);
    if (name.empty()) failAt(startLoc, "anonymous struct without typedef name");
    if (program_.structs.count(name) != 0)
      failAt(startLoc, "struct '%s' defined twice", name.c_str());
    program_.structs[name] = Type::structType(name, std::move(fields));
  }

  void parseEnumDef() {
    expect(TokKind::KwEnum);
    EnumDef def;
    def.name = expect(TokKind::Ident).text;
    expect(TokKind::LBrace);
    int64_t next = 0;
    for (;;) {
      const Token name = expect(TokKind::Ident);
      int64_t value = next;
      if (accept(TokKind::Assign)) value = expect(TokKind::Number).value;
      if (program_.enumConstants.count(name.text) != 0)
        failAt(name.loc, "enum constant '%s' defined twice", name.text.c_str());
      def.values.emplace_back(name.text, value);
      program_.enumConstants[name.text] = value;
      next = value + 1;
      if (!accept(TokKind::Comma)) break;
      if (peek().kind == TokKind::RBrace) break;  // trailing comma
    }
    expect(TokKind::RBrace);
    expect(TokKind::Semi);
    program_.enums.push_back(std::move(def));
  }

  void parseGlobalVar(TypePtr type, const Token& name) {
    GlobalVar g;
    g.name = name.text;
    g.loc = name.loc;
    g.type = parseArraySuffix(std::move(type));
    if (accept(TokKind::Assign)) parseInitializer(g.init);
    expect(TokKind::Semi);
    program_.globals.push_back(std::move(g));
  }

  void parseInitializer(std::vector<int64_t>& out) {
    if (accept(TokKind::LBrace)) {
      for (;;) {
        parseInitializer(out);
        if (!accept(TokKind::Comma)) break;
        if (peek().kind == TokKind::RBrace) break;
      }
      expect(TokKind::RBrace);
      return;
    }
    // Scalar initializers must be constants (numbers, negated numbers, or
    // enum constants resolved at check time — we accept identifiers here and
    // resolve during checking; simplest is to require numbers or enums now).
    bool negate = false;
    while (accept(TokKind::Minus)) negate = !negate;
    const Token t = take();
    int64_t v = 0;
    if (t.kind == TokKind::Number) {
      v = t.value;
    } else if (t.kind == TokKind::Ident) {
      auto it = program_.enumConstants.find(t.text);
      if (it == program_.enumConstants.end())
        failAt(t.loc, "initializer '%s' is not a constant", t.text.c_str());
      v = it->second;
    } else {
      failAt(t.loc, "expected constant initializer");
    }
    out.push_back(negate ? -v : v);
  }

  void parseFunction(TypePtr returnType, const Token& name) {
    Function f;
    f.name = name.text;
    f.loc = name.loc;
    f.returnType = std::move(returnType);
    expect(TokKind::LParen);
    if (peek().kind != TokKind::RParen) {
      for (;;) {
        Param p;
        p.type = parseType();
        p.name = expect(TokKind::Ident).text;
        p.type = parseArraySuffix(std::move(p.type));
        f.params.push_back(std::move(p));
        if (!accept(TokKind::Comma)) break;
      }
    }
    expect(TokKind::RParen);
    f.body = parseBlockBody();
    if (program_.findFunction(f.name) != nullptr)
      failAt(name.loc, "function '%s' defined twice", name.text.c_str());
    program_.functions.push_back(std::move(f));
  }

  // ------------------------------------------------------------ statements
  std::vector<StmtPtr> parseBlockBody() {
    expect(TokKind::LBrace);
    std::vector<StmtPtr> body;
    while (peek().kind != TokKind::RBrace) body.push_back(parseStmt());
    expect(TokKind::RBrace);
    return body;
  }

  StmtPtr parseStmt() {
    const SourceLoc loc = peek().loc;
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = loc;
    switch (peek().kind) {
      case TokKind::LBrace:
        stmt->kind = StmtKind::Block;
        stmt->body = parseBlockBody();
        return stmt;
      case TokKind::KwIf: {
        take();
        stmt->kind = StmtKind::If;
        expect(TokKind::LParen);
        stmt->expr = parseExpr();
        expect(TokKind::RParen);
        stmt->body.push_back(parseStmt());
        if (accept(TokKind::KwElse)) stmt->elseBody.push_back(parseStmt());
        return stmt;
      }
      case TokKind::KwWhile: {
        take();
        stmt->kind = StmtKind::While;
        expect(TokKind::LParen);
        stmt->expr = parseExpr();
        expect(TokKind::RParen);
        expect(TokKind::KwBound);
        const Token b = expect(TokKind::Number);
        if (b.value < 1) failAt(b.loc, "loop bound must be >= 1");
        stmt->loopBound = b.value;
        stmt->body.push_back(parseStmt());
        return stmt;
      }
      case TokKind::KwReturn: {
        take();
        stmt->kind = StmtKind::Return;
        if (peek().kind != TokKind::Semi) stmt->expr = parseExpr();
        expect(TokKind::Semi);
        return stmt;
      }
      default:
        break;
    }
    if (peekIsType()) {
      stmt->kind = StmtKind::VarDecl;
      stmt->varType = parseType();
      stmt->varName = expect(TokKind::Ident).text;
      stmt->varType = parseArraySuffix(std::move(stmt->varType));
      if (accept(TokKind::Assign)) stmt->expr = parseExpr();
      expect(TokKind::Semi);
      return stmt;
    }
    // Assignment or expression (call) statement.
    ExprPtr e = parseExpr();
    if (accept(TokKind::Assign)) {
      stmt->kind = StmtKind::Assign;
      stmt->lhs = std::move(e);
      stmt->expr = parseExpr();
    } else {
      if (e->kind != ExprKind::Call)
        failAt(loc, "expression statement must be a call");
      stmt->kind = StmtKind::ExprStmt;
      stmt->expr = std::move(e);
    }
    expect(TokKind::Semi);
    return stmt;
  }

  // ----------------------------------------------------------- expressions
  ExprPtr parseExpr() { return parseBinary(0); }

  /// Precedence-climbing over binary operators (C precedence order).
  static int precedenceOf(TokKind k) {
    switch (k) {
      case TokKind::OrOr: return 1;
      case TokKind::AndAnd: return 2;
      case TokKind::Pipe: return 3;
      case TokKind::Caret: return 4;
      case TokKind::Amp: return 5;
      case TokKind::Eq:
      case TokKind::Ne: return 6;
      case TokKind::Lt:
      case TokKind::Le:
      case TokKind::Gt:
      case TokKind::Ge: return 7;
      case TokKind::Shl:
      case TokKind::Shr: return 8;
      case TokKind::Plus:
      case TokKind::Minus: return 9;
      case TokKind::Star:
      case TokKind::Slash:
      case TokKind::Percent: return 10;
      default: return 0;
    }
  }

  static BinOp binOpFor(TokKind k) {
    switch (k) {
      case TokKind::OrOr: return BinOp::LogOr;
      case TokKind::AndAnd: return BinOp::LogAnd;
      case TokKind::Pipe: return BinOp::Or;
      case TokKind::Caret: return BinOp::Xor;
      case TokKind::Amp: return BinOp::And;
      case TokKind::Eq: return BinOp::Eq;
      case TokKind::Ne: return BinOp::Ne;
      case TokKind::Lt: return BinOp::Lt;
      case TokKind::Le: return BinOp::Le;
      case TokKind::Gt: return BinOp::Gt;
      case TokKind::Ge: return BinOp::Ge;
      case TokKind::Shl: return BinOp::Shl;
      case TokKind::Shr: return BinOp::Shr;
      case TokKind::Plus: return BinOp::Add;
      case TokKind::Minus: return BinOp::Sub;
      case TokKind::Star: return BinOp::Mul;
      case TokKind::Slash: return BinOp::Div;
      case TokKind::Percent: return BinOp::Mod;
      default: PSCP_ASSERT(false);
    }
  }

  ExprPtr parseBinary(int minPrec) {
    ExprPtr lhs = parseUnary();
    for (;;) {
      const int prec = precedenceOf(peek().kind);
      if (prec == 0 || prec < minPrec) return lhs;
      const Token op = take();
      ExprPtr rhs = parseBinary(prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Binary;
      e->binOp = binOpFor(op.kind);
      e->loc = op.loc;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  ExprPtr parseUnary() {
    const Token& t = peek();
    UnOp op;
    switch (t.kind) {
      case TokKind::Minus: op = UnOp::Neg; break;
      case TokKind::Tilde: op = UnOp::BitNot; break;
      case TokKind::Bang: op = UnOp::LogNot; break;
      default:
        return parsePostfix();
    }
    const Token opTok = take();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Unary;
    e->unOp = op;
    e->loc = opTok.loc;
    e->children.push_back(parseUnary());
    return e;
  }

  ExprPtr parsePostfix() {
    ExprPtr e = parsePrimary();
    for (;;) {
      if (accept(TokKind::Dot)) {
        const Token f = expect(TokKind::Ident);
        auto m = std::make_unique<Expr>();
        m->kind = ExprKind::Member;
        m->name = f.text;
        m->loc = f.loc;
        m->children.push_back(std::move(e));
        e = std::move(m);
      } else if (peek().kind == TokKind::LBracket) {
        const Token br = take();
        auto ix = std::make_unique<Expr>();
        ix->kind = ExprKind::Index;
        ix->loc = br.loc;
        ix->children.push_back(std::move(e));
        ix->children.push_back(parseExpr());
        expect(TokKind::RBracket);
        e = std::move(ix);
      } else {
        return e;
      }
    }
  }

  ExprPtr parsePrimary() {
    const Token t = take();
    switch (t.kind) {
      case TokKind::Number:
        return makeIntLit(t.value, t.loc);
      case TokKind::LParen: {
        ExprPtr e = parseExpr();
        expect(TokKind::RParen);
        return e;
      }
      case TokKind::Ident: {
        if (peek().kind == TokKind::LParen) {
          take();
          auto call = std::make_unique<Expr>();
          call->kind = ExprKind::Call;
          call->name = t.text;
          call->loc = t.loc;
          if (peek().kind != TokKind::RParen) {
            for (;;) {
              call->children.push_back(parseExpr());
              if (!accept(TokKind::Comma)) break;
            }
          }
          expect(TokKind::RParen);
          return call;
        }
        return makeVarRef(t.text, t.loc);
      }
      default:
        failAt(t.loc, "expected expression, found '%s'", t.text.c_str());
    }
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  Program program_;
};

}  // namespace

Program parseProgramText(std::string_view src, const std::string& file) {
  Parser parser(src, file);
  return parser.parse();
}

Program parseActionSource(std::string_view src, const std::string& file) {
  Program p = parseProgramText(src, file);
  checkProgram(p);
  return p;
}

}  // namespace pscp::actionlang
