#include "actionlang/lexer.hpp"

#include <cctype>
#include <map>

namespace pscp::actionlang {

const char* tokKindName(TokKind k) {
  switch (k) {
    case TokKind::Ident: return "identifier";
    case TokKind::Number: return "number";
    case TokKind::KwInt: return "'int'";
    case TokKind::KwUint: return "'uint'";
    case TokKind::KwVoid: return "'void'";
    case TokKind::KwStruct: return "'struct'";
    case TokKind::KwTypedef: return "'typedef'";
    case TokKind::KwEnum: return "'enum'";
    case TokKind::KwIf: return "'if'";
    case TokKind::KwElse: return "'else'";
    case TokKind::KwWhile: return "'while'";
    case TokKind::KwReturn: return "'return'";
    case TokKind::KwBound: return "'bound'";
    case TokKind::KwEvent: return "'event'";
    case TokKind::KwCond: return "'cond'";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Semi: return "';'";
    case TokKind::Comma: return "','";
    case TokKind::Dot: return "'.'";
    case TokKind::Colon: return "':'";
    case TokKind::Assign: return "'='";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Percent: return "'%'";
    case TokKind::Amp: return "'&'";
    case TokKind::Pipe: return "'|'";
    case TokKind::Caret: return "'^'";
    case TokKind::Tilde: return "'~'";
    case TokKind::Bang: return "'!'";
    case TokKind::Shl: return "'<<'";
    case TokKind::Shr: return "'>>'";
    case TokKind::Eq: return "'=='";
    case TokKind::Ne: return "'!='";
    case TokKind::Lt: return "'<'";
    case TokKind::Le: return "'<='";
    case TokKind::Gt: return "'>'";
    case TokKind::Ge: return "'>='";
    case TokKind::AndAnd: return "'&&'";
    case TokKind::OrOr: return "'||'";
    case TokKind::End: return "end of input";
  }
  return "?";
}

namespace {

const std::map<std::string, TokKind>& keywords() {
  static const std::map<std::string, TokKind> kw = {
      {"int", TokKind::KwInt},       {"uint", TokKind::KwUint},
      {"void", TokKind::KwVoid},     {"struct", TokKind::KwStruct},
      {"typedef", TokKind::KwTypedef}, {"enum", TokKind::KwEnum},
      {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},   {"return", TokKind::KwReturn},
      {"bound", TokKind::KwBound},   {"event", TokKind::KwEvent},
      {"cond", TokKind::KwCond},
  };
  return kw;
}

}  // namespace

std::vector<Token> lexActionSource(std::string_view src, const std::string& file) {
  std::vector<Token> out;
  size_t pos = 0;
  int line = 1;
  int col = 1;

  auto here = [&]() { return SourceLoc{file, line, col}; };
  auto bump = [&]() {
    if (pos < src.size() && src[pos] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++pos;
  };
  auto at = [&](size_t i) { return i < src.size() ? src[i] : '\0'; };
  auto push = [&](TokKind k, std::string text, SourceLoc loc, int64_t value = 0) {
    out.push_back({k, std::move(text), value, std::move(loc)});
  };

  while (pos < src.size()) {
    const char c = src[pos];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      bump();
      continue;
    }
    // Comments: // and /* */
    if (c == '/' && at(pos + 1) == '/') {
      while (pos < src.size() && src[pos] != '\n') bump();
      continue;
    }
    if (c == '/' && at(pos + 1) == '*') {
      const SourceLoc start = here();
      bump();
      bump();
      while (pos < src.size() && !(src[pos] == '*' && at(pos + 1) == '/')) bump();
      if (pos >= src.size()) failAt(start, "unterminated block comment");
      bump();
      bump();
      continue;
    }
    const SourceLoc loc = here();
    // Binary literal: B:010101
    if (c == 'B' && at(pos + 1) == ':' && (at(pos + 2) == '0' || at(pos + 2) == '1')) {
      bump();
      bump();
      int64_t value = 0;
      std::string digits;
      while (at(pos) == '0' || at(pos) == '1') {
        value = value * 2 + (src[pos] - '0');
        digits += src[pos];
        bump();
      }
      if (digits.size() > 32) failAt(loc, "binary literal wider than 32 bits");
      push(TokKind::Number, "B:" + digits, loc, value);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::string text;
      while (std::isalnum(static_cast<unsigned char>(at(pos))) != 0) {
        text += src[pos];
        bump();
      }
      int64_t value = 0;
      try {
        size_t used = 0;
        value = std::stoll(text, &used, 0);  // handles 0x.., 0.. octal, decimal
        if (used != text.size()) throw std::invalid_argument(text);
      } catch (const std::exception&) {
        failAt(loc, "malformed number '%s'", text.c_str());
      }
      push(TokKind::Number, std::move(text), loc, value);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::string text;
      while (std::isalnum(static_cast<unsigned char>(at(pos))) != 0 || at(pos) == '_') {
        text += src[pos];
        bump();
      }
      auto it = keywords().find(text);
      push(it != keywords().end() ? it->second : TokKind::Ident, std::move(text), loc);
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char c2, TokKind k2, TokKind k1) {
      if (at(pos + 1) == c2) {
        std::string text{c, c2};
        bump();
        bump();
        push(k2, std::move(text), loc);
      } else {
        bump();
        push(k1, std::string(1, c), loc);
      }
    };
    switch (c) {
      case '(': bump(); push(TokKind::LParen, "(", loc); break;
      case ')': bump(); push(TokKind::RParen, ")", loc); break;
      case '{': bump(); push(TokKind::LBrace, "{", loc); break;
      case '}': bump(); push(TokKind::RBrace, "}", loc); break;
      case '[': bump(); push(TokKind::LBracket, "[", loc); break;
      case ']': bump(); push(TokKind::RBracket, "]", loc); break;
      case ';': bump(); push(TokKind::Semi, ";", loc); break;
      case ',': bump(); push(TokKind::Comma, ",", loc); break;
      case '.': bump(); push(TokKind::Dot, ".", loc); break;
      case ':': bump(); push(TokKind::Colon, ":", loc); break;
      case '+': bump(); push(TokKind::Plus, "+", loc); break;
      case '-': bump(); push(TokKind::Minus, "-", loc); break;
      case '*': bump(); push(TokKind::Star, "*", loc); break;
      case '/': bump(); push(TokKind::Slash, "/", loc); break;
      case '%': bump(); push(TokKind::Percent, "%", loc); break;
      case '^': bump(); push(TokKind::Caret, "^", loc); break;
      case '~': bump(); push(TokKind::Tilde, "~", loc); break;
      case '&': two('&', TokKind::AndAnd, TokKind::Amp); break;
      case '|': two('|', TokKind::OrOr, TokKind::Pipe); break;
      case '=': two('=', TokKind::Eq, TokKind::Assign); break;
      case '!': two('=', TokKind::Ne, TokKind::Bang); break;
      case '<':
        if (at(pos + 1) == '<') two('<', TokKind::Shl, TokKind::Lt);
        else two('=', TokKind::Le, TokKind::Lt);
        break;
      case '>':
        if (at(pos + 1) == '>') two('>', TokKind::Shr, TokKind::Gt);
        else two('=', TokKind::Ge, TokKind::Gt);
        break;
      default:
        failAt(loc, "unexpected character '%c'", c);
    }
  }
  out.push_back({TokKind::End, "", 0, here()});
  return out;
}

}  // namespace pscp::actionlang
