// AST for the extended-C action language.
//
// Nodes are plain structs with an explicit kind tag; the tree is owned via
// unique_ptr. The type checker annotates every expression with its Type
// and folds compile-time constants (enum values, literals).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "actionlang/types.hpp"
#include "support/diag.hpp"

namespace pscp::actionlang {

// ------------------------------------------------------------- expressions

enum class ExprKind {
  IntLit,    ///< literal (value, type)
  VarRef,    ///< named variable / parameter / enum constant
  Member,    ///< base.field
  Index,     ///< base[index]
  Unary,     ///< op operand
  Binary,    ///< lhs op rhs
  Call,      ///< function or intrinsic call as an expression
};

enum class UnOp { Neg, BitNot, LogNot };
enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  And, Or, Xor, Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge,
  LogAnd, LogOr,
};

[[nodiscard]] const char* binOpName(BinOp op);
[[nodiscard]] const char* unOpName(UnOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::IntLit;
  SourceLoc loc;
  TypePtr type;  ///< filled in by the type checker

  // IntLit
  int64_t value = 0;
  // VarRef / Member field name / Call callee
  std::string name;
  // Unary / Binary
  UnOp unOp = UnOp::Neg;
  BinOp binOp = BinOp::Add;
  // Children: Member/Index/Unary -> [base(, index)], Binary -> [lhs, rhs],
  // Call -> arguments.
  std::vector<ExprPtr> children;

  /// Constant value if the checker folded this node.
  std::optional<int64_t> constant;

  [[nodiscard]] std::string str() const;
};

[[nodiscard]] ExprPtr makeIntLit(int64_t value, SourceLoc loc = {});
[[nodiscard]] ExprPtr makeVarRef(std::string name, SourceLoc loc = {});

// -------------------------------------------------------------- statements

enum class StmtKind {
  Block,
  VarDecl,   ///< local declaration with optional init
  Assign,    ///< lvalue = expr
  If,
  While,     ///< with mandatory loop bound for WCET analysis
  Return,
  ExprStmt,  ///< call for side effects
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind = StmtKind::Block;
  SourceLoc loc;

  // VarDecl
  std::string varName;
  TypePtr varType;
  // Assign: lvalue / rvalue; If: cond; While: cond; Return: value (optional);
  // ExprStmt: call.
  ExprPtr lhs;   // Assign lvalue
  ExprPtr expr;  // condition / rvalue / return value / call
  // Block body; If: thenBody/elseBody via body/elseBody; While: body.
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> elseBody;
  // While only: maximum iteration count (designer-asserted, used for WCET).
  int64_t loopBound = 0;
};

// ------------------------------------------------------------ declarations

struct Param {
  std::string name;
  TypePtr type;
};

struct Function {
  std::string name;
  TypePtr returnType;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  SourceLoc loc;
  bool isIntrinsic = false;
};

struct GlobalVar {
  std::string name;
  TypePtr type;
  /// Flattened initial bytes (after constant evaluation); empty = zeros.
  std::vector<int64_t> init;  ///< one entry per scalar element, pre-layout
  SourceLoc loc;
  /// Storage class chosen by the design-space explorer: see compiler docs.
  /// 0 = external RAM (default), 1 = internal RAM, 2 = register file.
  int storageClass = 0;
};

struct EnumDef {
  std::string name;
  std::vector<std::pair<std::string, int64_t>> values;
};

/// A checked action-language translation unit.
struct Program {
  std::map<std::string, TypePtr> structs;
  std::vector<EnumDef> enums;
  std::map<std::string, int64_t> enumConstants;  // name -> value
  std::vector<GlobalVar> globals;
  std::vector<Function> functions;

  [[nodiscard]] const Function* findFunction(const std::string& name) const;
  [[nodiscard]] const Function& function(const std::string& name) const;
  [[nodiscard]] const GlobalVar* findGlobal(const std::string& name) const;
  [[nodiscard]] GlobalVar* findGlobal(const std::string& name);
};

/// Names of the built-in intrinsics (see interp.cpp for semantics):
///   raise(event)                 write an event into the CR
///   set_cond(cond, expr)         write a condition (via condition cache)
///   test_cond(cond) -> int:1     read a condition
///   read_port(portName) -> int   read a data port
///   write_port(portName, expr)   write a data port
///   in_state(stateName) -> int:1 configuration test (SLA state part)
[[nodiscard]] bool isIntrinsicName(const std::string& name);

}  // namespace pscp::actionlang
