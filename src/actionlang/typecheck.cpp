// Semantic checking for the action language: name binding, width-aware
// typing, constant folding, intrinsic signatures, and the no-recursion rule
// of Sec. 2 ("functions can call other functions, but recursion is not
// permitted").
#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "actionlang/parser.hpp"

namespace pscp::actionlang {
namespace {

/// Wrap a folded constant to its node's width/signedness so that every
/// stored constant is in canonical (runtime) representation — folding with
/// plain 64-bit math would otherwise diverge from execution semantics.
int64_t wrapConstant(int64_t v, const TypePtr& t) {
  const uint32_t raw = truncBits(static_cast<uint32_t>(v), t->width());
  return t->isSigned() ? signExtend(raw, t->width()) : static_cast<int64_t>(raw);
}

/// Width/signedness promotion for binary arithmetic: widest operand wins,
/// signed wins (the ASIP datapath is sized to the widest live value).
TypePtr promote(const TypePtr& a, const TypePtr& b) {
  const int width = std::max(a->width(), b->width());
  const bool isSigned = a->isSigned() || b->isSigned();
  return Type::intType(width, isSigned);
}

class Checker {
 public:
  explicit Checker(Program& p) : program_(p) {}

  void run() {
    for (GlobalVar& g : program_.globals) checkGlobal(g);
    for (Function& f : program_.functions) checkFunction(f);
    checkCallGraph();
  }

 private:
  // ---------------------------------------------------------------- scopes
  struct Scope {
    std::map<std::string, TypePtr> vars;
  };

  TypePtr lookupVar(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->vars.find(name);
      if (found != it->vars.end()) return found->second;
    }
    if (const GlobalVar* g = program_.findGlobal(name)) return g->type;
    return nullptr;
  }

  void declareVar(const std::string& name, TypePtr type, const SourceLoc& loc) {
    if (scopes_.back().vars.count(name) != 0)
      failAt(loc, "variable '%s' redeclared in the same scope", name.c_str());
    scopes_.back().vars[name] = std::move(type);
  }

  // --------------------------------------------------------------- globals
  void checkGlobal(GlobalVar& g) {
    if (g.type->kind() == TypeKind::Void || g.type->kind() == TypeKind::Event ||
        g.type->kind() == TypeKind::Cond)
      failAt(g.loc, "global '%s' has non-storable type %s", g.name.c_str(),
             g.type->str().c_str());
    const int scalarCount = countScalars(g.type);
    if (!g.init.empty() && static_cast<int>(g.init.size()) != scalarCount)
      failAt(g.loc, "initializer of '%s' has %zu values, type %s needs %d",
             g.name.c_str(), g.init.size(), g.type->str().c_str(), scalarCount);
  }

  static int countScalars(const TypePtr& t) {
    switch (t->kind()) {
      case TypeKind::Int:
        return 1;
      case TypeKind::Struct: {
        int n = 0;
        for (const auto& [fname, ftype] : t->fields()) n += countScalars(ftype);
        return n;
      }
      case TypeKind::Array:
        return t->arrayCount() * countScalars(t->element());
      default:
        return 0;
    }
  }

  // ------------------------------------------------------------- functions
  void checkFunction(Function& f) {
    current_ = &f;
    scopes_.clear();
    scopes_.emplace_back();
    for (const Param& p : f.params) {
      if (p.type->kind() == TypeKind::Void)
        failAt(f.loc, "parameter '%s' of '%s' has void type", p.name.c_str(),
               f.name.c_str());
      declareVar(p.name, p.type, f.loc);
    }
    for (StmtPtr& s : f.body) checkStmt(*s);
    scopes_.pop_back();
    current_ = nullptr;
  }

  void checkStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::Block: {
        scopes_.emplace_back();
        for (StmtPtr& inner : s.body) checkStmt(*inner);
        scopes_.pop_back();
        return;
      }
      case StmtKind::VarDecl: {
        if (!s.varType->isScalar() && s.varType->kind() != TypeKind::Array &&
            s.varType->kind() != TypeKind::Struct)
          failAt(s.loc, "local '%s' has non-storable type %s", s.varName.c_str(),
                 s.varType->str().c_str());
        if (s.expr) {
          checkExpr(*s.expr);
          requireScalar(*s.expr, "initializer");
          if (!s.varType->isScalar())
            failAt(s.loc, "only scalar locals may have initializers");
        }
        declareVar(s.varName, s.varType, s.loc);
        return;
      }
      case StmtKind::Assign: {
        checkExpr(*s.lhs);
        requireLvalue(*s.lhs);
        requireScalar(*s.lhs, "assignment target");
        checkExpr(*s.expr);
        requireScalar(*s.expr, "assigned value");
        return;
      }
      case StmtKind::If: {
        checkExpr(*s.expr);
        requireScalar(*s.expr, "if condition");
        scopes_.emplace_back();
        for (StmtPtr& inner : s.body) checkStmt(*inner);
        scopes_.pop_back();
        scopes_.emplace_back();
        for (StmtPtr& inner : s.elseBody) checkStmt(*inner);
        scopes_.pop_back();
        return;
      }
      case StmtKind::While: {
        checkExpr(*s.expr);
        requireScalar(*s.expr, "while condition");
        PSCP_ASSERT(s.loopBound >= 1);  // parser guarantees
        scopes_.emplace_back();
        for (StmtPtr& inner : s.body) checkStmt(*inner);
        scopes_.pop_back();
        return;
      }
      case StmtKind::Return: {
        const bool wantsValue = current_->returnType->kind() != TypeKind::Void;
        if (wantsValue && !s.expr)
          failAt(s.loc, "'%s' must return a value", current_->name.c_str());
        if (!wantsValue && s.expr)
          failAt(s.loc, "'%s' returns void", current_->name.c_str());
        if (s.expr) {
          checkExpr(*s.expr);
          requireScalar(*s.expr, "return value");
        }
        return;
      }
      case StmtKind::ExprStmt:
        checkExpr(*s.expr);
        return;
    }
  }

  // ------------------------------------------------------------ expressions
  static void requireScalar(const Expr& e, const char* what) {
    if (!e.type || !e.type->isScalar())
      failAt(e.loc, "%s must be an integer expression (got %s)", what,
             e.type ? e.type->str().c_str() : "<untyped>");
  }

  static void requireLvalue(const Expr& e) {
    if (e.kind != ExprKind::VarRef && e.kind != ExprKind::Member &&
        e.kind != ExprKind::Index)
      failAt(e.loc, "assignment target is not an lvalue");
  }

  void checkExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: {
        // Literals adopt the smallest signed width that represents them;
        // promotion widens them in context.
        const int64_t v = e.value;
        int width = 1;
        while (width < 32 && (v < -(1ll << (width - 1)) || v >= (1ll << (width - 1))))
          ++width;
        e.type = Type::intType(width, true);
        e.constant = v;
        return;
      }
      case ExprKind::VarRef: {
        auto ec = program_.enumConstants.find(e.name);
        if (ec != program_.enumConstants.end()) {
          e.constant = ec->second;
          int width = 1;
          const int64_t v = ec->second;
          while (width < 32 && (v < -(1ll << (width - 1)) || v >= (1ll << (width - 1))))
            ++width;
          e.type = Type::intType(width, true);
          return;
        }
        TypePtr t = lookupVar(e.name);
        if (!t) failAt(e.loc, "use of undeclared identifier '%s'", e.name.c_str());
        e.type = std::move(t);
        return;
      }
      case ExprKind::Member: {
        checkExpr(*e.children[0]);
        const TypePtr& base = e.children[0]->type;
        if (base->kind() != TypeKind::Struct)
          failAt(e.loc, "member access on non-struct type %s", base->str().c_str());
        e.type = base->fieldType(e.name);
        return;
      }
      case ExprKind::Index: {
        checkExpr(*e.children[0]);
        checkExpr(*e.children[1]);
        const TypePtr& base = e.children[0]->type;
        if (base->kind() != TypeKind::Array)
          failAt(e.loc, "indexing non-array type %s", base->str().c_str());
        requireScalar(*e.children[1], "array index");
        if (e.children[1]->constant.has_value()) {
          const int64_t ix = *e.children[1]->constant;
          if (ix < 0 || ix >= base->arrayCount())
            failAt(e.loc, "constant index %lld out of bounds [0, %d)",
                   static_cast<long long>(ix), base->arrayCount());
        }
        e.type = base->element();
        return;
      }
      case ExprKind::Unary: {
        checkExpr(*e.children[0]);
        requireScalar(*e.children[0], "operand");
        const TypePtr& t = e.children[0]->type;
        e.type = (e.unOp == UnOp::LogNot) ? Type::intType(1, false)
                                          : Type::intType(t->width(), t->isSigned());
        if (e.children[0]->constant.has_value()) {
          const int64_t v = *e.children[0]->constant;
          switch (e.unOp) {
            case UnOp::Neg: e.constant = wrapConstant(-v, e.type); break;
            case UnOp::BitNot: e.constant = wrapConstant(~v, e.type); break;
            case UnOp::LogNot: e.constant = (v == 0) ? 1 : 0; break;
          }
        }
        return;
      }
      case ExprKind::Binary: {
        checkExpr(*e.children[0]);
        checkExpr(*e.children[1]);
        requireScalar(*e.children[0], "operand");
        requireScalar(*e.children[1], "operand");
        const TypePtr& a = e.children[0]->type;
        const TypePtr& b = e.children[1]->type;
        switch (e.binOp) {
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge:
          case BinOp::LogAnd:
          case BinOp::LogOr:
            e.type = Type::intType(1, false);
            break;
          case BinOp::Shl:
          case BinOp::Shr:
            e.type = Type::intType(a->width(), a->isSigned());
            break;
          default:
            e.type = promote(a, b);
        }
        foldBinary(e);
        return;
      }
      case ExprKind::Call:
        checkCall(e);
        return;
    }
  }

  void foldBinary(Expr& e) {
    if (!e.children[0]->constant || !e.children[1]->constant) return;
    // Operand constants are already in canonical form for their own types;
    // compute in 64-bit then wrap the result to this node's type so the
    // fold matches execution exactly.
    const int64_t a = *e.children[0]->constant;
    const int64_t b = *e.children[1]->constant;
    switch (e.binOp) {
      case BinOp::Add: e.constant = wrapConstant(a + b, e.type); break;
      case BinOp::Sub: e.constant = wrapConstant(a - b, e.type); break;
      case BinOp::Mul: e.constant = wrapConstant(a * b, e.type); break;
      case BinOp::Div:
        if (b == 0) failAt(e.loc, "constant division by zero");
        e.constant = wrapConstant(a / b, e.type);
        break;
      case BinOp::Mod:
        if (b == 0) failAt(e.loc, "constant modulo by zero");
        e.constant = wrapConstant(a % b, e.type);
        break;
      case BinOp::And: e.constant = wrapConstant(a & b, e.type); break;
      case BinOp::Or: e.constant = wrapConstant(a | b, e.type); break;
      case BinOp::Xor: e.constant = wrapConstant(a ^ b, e.type); break;
      case BinOp::Shl: e.constant = wrapConstant(a << (b & 31), e.type); break;
      case BinOp::Shr: e.constant = wrapConstant(a >> (b & 31), e.type); break;
      case BinOp::Eq: e.constant = (a == b) ? 1 : 0; break;
      case BinOp::Ne: e.constant = (a != b) ? 1 : 0; break;
      case BinOp::Lt: e.constant = (a < b) ? 1 : 0; break;
      case BinOp::Le: e.constant = (a <= b) ? 1 : 0; break;
      case BinOp::Gt: e.constant = (a > b) ? 1 : 0; break;
      case BinOp::Ge: e.constant = (a >= b) ? 1 : 0; break;
      case BinOp::LogAnd: e.constant = (a != 0 && b != 0) ? 1 : 0; break;
      case BinOp::LogOr: e.constant = (a != 0 || b != 0) ? 1 : 0; break;
    }
  }

  /// Hardware-name argument: must be a bare identifier; it names an event,
  /// condition, port, or state resolved against the chart at link time.
  void requireHardwareName(Expr& arg, TypePtr asType, const char* what) {
    if (arg.kind != ExprKind::VarRef)
      failAt(arg.loc, "%s argument must be a bare name", what);
    // If a local/param of event/cond type is in scope under that name, the
    // call passes the binding through; otherwise the name is symbolic.
    TypePtr t = lookupVar(arg.name);
    if (t && (t->kind() == TypeKind::Event || t->kind() == TypeKind::Cond)) {
      if (!t->same(*asType))
        failAt(arg.loc, "%s argument has wrong binding type %s", what, t->str().c_str());
      arg.type = t;
      return;
    }
    if (t) failAt(arg.loc, "%s argument '%s' names a variable, not a hardware object",
                  what, arg.name.c_str());
    if (program_.enumConstants.count(arg.name) != 0)
      failAt(arg.loc, "%s argument '%s' names an enum constant", what, arg.name.c_str());
    arg.type = std::move(asType);
  }

  void checkCall(Expr& e) {
    if (isIntrinsicName(e.name)) {
      checkIntrinsic(e);
      return;
    }
    const Function* callee = program_.findFunction(e.name);
    if (callee == nullptr)
      failAt(e.loc, "call to undefined function '%s'", e.name.c_str());
    if (callee->params.size() != e.children.size())
      failAt(e.loc, "'%s' expects %zu arguments, got %zu", e.name.c_str(),
             callee->params.size(), e.children.size());
    for (size_t i = 0; i < e.children.size(); ++i) {
      Expr& arg = *e.children[i];
      const TypePtr& pt = callee->params[i].type;
      switch (pt->kind()) {
        case TypeKind::Event:
        case TypeKind::Cond:
          requireHardwareName(arg, pt, "event/cond");
          break;
        case TypeKind::Struct:
        case TypeKind::Array: {
          // By-reference parameters: the argument must be a named object of
          // the same type (global, or a pass-through reference parameter).
          checkExpr(arg);
          if (arg.kind != ExprKind::VarRef)
            failAt(arg.loc, "argument %zu of '%s' must name a %s object", i + 1,
                   e.name.c_str(), pt->str().c_str());
          if (!arg.type->same(*pt))
            failAt(arg.loc, "argument %zu of '%s': expected %s, got %s", i + 1,
                   e.name.c_str(), pt->str().c_str(), arg.type->str().c_str());
          break;
        }
        default:
          checkExpr(arg);
          requireScalar(arg, "argument");
      }
    }
    e.type = callee->returnType;
    if (current_ != nullptr) callEdges_[current_->name].insert(e.name);
  }

  void checkIntrinsic(Expr& e) {
    auto arity = [&](size_t n) {
      if (e.children.size() != n)
        failAt(e.loc, "intrinsic '%s' expects %zu argument(s), got %zu", e.name.c_str(),
               n, e.children.size());
    };
    if (e.name == "raise") {
      arity(1);
      requireHardwareName(*e.children[0], Type::eventType(), "raise");
      e.type = Type::voidType();
    } else if (e.name == "set_cond") {
      arity(2);
      requireHardwareName(*e.children[0], Type::condType(), "set_cond");
      checkExpr(*e.children[1]);
      requireScalar(*e.children[1], "condition value");
      e.type = Type::voidType();
    } else if (e.name == "test_cond") {
      arity(1);
      requireHardwareName(*e.children[0], Type::condType(), "test_cond");
      e.type = Type::intType(1, false);
    } else if (e.name == "read_port") {
      arity(1);
      requireHardwareName(*e.children[0], Type::intType(16, false), "read_port");
      e.type = Type::intType(16, false);
    } else if (e.name == "write_port") {
      arity(2);
      requireHardwareName(*e.children[0], Type::intType(16, false), "write_port");
      checkExpr(*e.children[1]);
      requireScalar(*e.children[1], "port value");
      e.type = Type::voidType();
    } else if (e.name == "in_state") {
      arity(1);
      requireHardwareName(*e.children[0], Type::intType(1, false), "in_state");
      e.type = Type::intType(1, false);
    } else {
      PSCP_ASSERT(false);
    }
  }

  // -------------------------------------------------------------- recursion
  void checkCallGraph() {
    // DFS cycle detection over the recorded call edges.
    std::set<std::string> visiting;
    std::set<std::string> done;
    std::vector<std::string> stack;
    std::function<void(const std::string&)> dfs = [&](const std::string& fn) {
      if (done.count(fn) != 0) return;
      if (visiting.count(fn) != 0) {
        std::string cycle;
        for (const std::string& s : stack) cycle += s + " -> ";
        // Point at the function that closes the cycle.
        const Function* f = program_.findFunction(fn);
        if (f != nullptr && f->loc.known())
          failAt(f->loc, "recursion is not permitted: %s%s", cycle.c_str(), fn.c_str());
        fail("recursion is not permitted: %s%s", cycle.c_str(), fn.c_str());
      }
      visiting.insert(fn);
      stack.push_back(fn);
      auto it = callEdges_.find(fn);
      if (it != callEdges_.end())
        for (const std::string& callee : it->second)
          if (program_.findFunction(callee) != nullptr) dfs(callee);
      stack.pop_back();
      visiting.erase(fn);
      done.insert(fn);
    };
    for (const Function& f : program_.functions) dfs(f.name);
  }

  Program& program_;
  Function* current_ = nullptr;
  std::vector<Scope> scopes_;
  std::map<std::string, std::set<std::string>> callEdges_;
};

}  // namespace

void checkProgram(Program& program) {
  Checker(program).run();
}

}  // namespace pscp::actionlang
