// Reference interpreter for the action language.
//
// This executes action routines at the *specification* level — it is the
// golden model against which the compiled TEP machine code is checked.
// Hardware interaction (events, conditions, ports, configuration tests)
// goes through the HardwareEnv interface so the same interpreter serves
// the chart-level reference simulator and standalone unit tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "actionlang/ast.hpp"

namespace pscp::actionlang {

/// Connection between action routines and the surrounding machine.
class HardwareEnv {
 public:
  virtual ~HardwareEnv() = default;
  virtual void raiseEvent(const std::string& name) = 0;
  virtual void setCondition(const std::string& name, bool value) = 0;
  [[nodiscard]] virtual bool testCondition(const std::string& name) = 0;
  [[nodiscard]] virtual uint32_t readPort(const std::string& name) = 0;
  virtual void writePort(const std::string& name, uint32_t value) = 0;
  [[nodiscard]] virtual bool inState(const std::string& name) = 0;
};

/// A HardwareEnv that records effects and serves ports/conditions from
/// plain maps — sufficient for unit tests and simple examples.
class RecordingEnv : public HardwareEnv {
 public:
  void raiseEvent(const std::string& name) override { raised.push_back(name); }
  void setCondition(const std::string& name, bool value) override {
    conditions[name] = value;
  }
  bool testCondition(const std::string& name) override { return conditions[name]; }
  uint32_t readPort(const std::string& name) override { return ports[name]; }
  void writePort(const std::string& name, uint32_t value) override {
    ports[name] = value;
    portWrites.emplace_back(name, value);
  }
  bool inState(const std::string& name) override { return states[name]; }

  std::vector<std::string> raised;
  std::map<std::string, bool> conditions;
  std::map<std::string, uint32_t> ports;
  std::vector<std::pair<std::string, uint32_t>> portWrites;
  std::map<std::string, bool> states;
};

/// Argument passed to a top-level routine invocation (from a transition
/// label): either a scalar value or a symbolic name (global / event /
/// condition / enum constant — resolved against the program).
struct CallArg {
  std::string text;  ///< raw label-argument text
};

/// Number of scalar slots a type occupies in the interpreter's flattened
/// object representation.
[[nodiscard]] int scalarSlotCount(const TypePtr& t);

/// Scalar-slot offset of a struct field / array element.
[[nodiscard]] int scalarFieldOffset(const TypePtr& structType, const std::string& field);

class Interp {
 public:
  Interp(const Program& program, HardwareEnv& env);

  /// (Re)initialize all globals from their initializers.
  void reset();

  /// Invoke a routine as a transition action: arguments are the raw label
  /// strings (numbers, enum constants, global names, event/cond names).
  int64_t callFromLabel(const std::string& function,
                        const std::vector<std::string>& args);

  /// Invoke with scalar arguments only (unit-test convenience).
  int64_t call(const std::string& function, const std::vector<int64_t>& args = {});

  /// Read back a global scalar (or aggregate slot) for assertions.
  [[nodiscard]] int64_t globalValue(const std::string& name, int slot = 0) const;
  void setGlobalValue(const std::string& name, int64_t value, int slot = 0);

  /// Total number of statements executed since construction/reset —
  /// a crude effort metric used by tests.
  [[nodiscard]] int64_t executedStatements() const { return executed_; }

 private:
  struct ObjectRef {
    std::vector<int64_t>* data = nullptr;
    int offset = 0;
    TypePtr type;
  };
  struct Binding {
    // Exactly one meaningful member depending on the parameter type:
    int64_t scalar = 0;      // Int params (by value)
    ObjectRef ref;           // Struct/Array params (by reference)
    std::string hardware;    // Event/Cond params (symbolic)
  };
  struct Frame {
    std::map<std::string, Binding> locals;
    std::map<std::string, std::vector<int64_t>> localStorage;  // aggregates
  };

  int64_t invoke(const Function& fn, std::vector<Binding> args);
  /// Returns true if a `return` was executed (value in `retval_`).
  bool execStmt(const Stmt& s, Frame& frame);
  int64_t evalExpr(const Expr& e, Frame& frame);
  int64_t evalIntrinsic(const Expr& e, Frame& frame);
  ObjectRef resolveObject(const Expr& e, Frame& frame);
  void storeScalar(const Expr& lvalue, Frame& frame, int64_t value);
  [[nodiscard]] static int64_t wrapToType(int64_t v, const TypePtr& t);
  Binding bindLabelArg(const std::string& text, const TypePtr& paramType);
  [[nodiscard]] std::string hardwareNameOf(const Expr& arg, Frame& frame);

  const Program& program_;
  HardwareEnv& env_;
  std::map<std::string, std::vector<int64_t>> globals_;
  int64_t retval_ = 0;
  int64_t executed_ = 0;
  int callDepth_ = 0;
};

}  // namespace pscp::actionlang
