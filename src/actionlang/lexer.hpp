// Lexer for the extended-C action language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/diag.hpp"

namespace pscp::actionlang {

enum class TokKind {
  Ident,
  Number,     ///< decimal / 0x hex / 0 octal / B:binary — value in `value`
  KwInt, KwUint, KwVoid, KwStruct, KwTypedef, KwEnum, KwIf, KwElse, KwWhile,
  KwReturn, KwBound, KwEvent, KwCond,
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Dot, Colon,
  Assign,   // =
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge,
  AndAnd, OrOr,
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  int64_t value = 0;  ///< for Number
  SourceLoc loc;
};

[[nodiscard]] const char* tokKindName(TokKind k);

/// Tokenizes the whole input eagerly; throws pscp::Error on bad input.
[[nodiscard]] std::vector<Token> lexActionSource(std::string_view src,
                                                 const std::string& file);

}  // namespace pscp::actionlang
