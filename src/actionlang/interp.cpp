#include "actionlang/interp.hpp"

#include <cctype>

namespace pscp::actionlang {

int scalarSlotCount(const TypePtr& t) {
  switch (t->kind()) {
    case TypeKind::Int:
      return 1;
    case TypeKind::Struct: {
      int n = 0;
      for (const auto& [fname, ftype] : t->fields()) n += scalarSlotCount(ftype);
      return n;
    }
    case TypeKind::Array:
      return t->arrayCount() * scalarSlotCount(t->element());
    default:
      return 0;
  }
}

int scalarFieldOffset(const TypePtr& structType, const std::string& field) {
  PSCP_ASSERT(structType->kind() == TypeKind::Struct);
  int offset = 0;
  for (const auto& [fname, ftype] : structType->fields()) {
    if (fname == field) return offset;
    offset += scalarSlotCount(ftype);
  }
  fail("struct '%s' has no field '%s'", structType->structName().c_str(), field.c_str());
}

Interp::Interp(const Program& program, HardwareEnv& env)
    : program_(program), env_(env) {
  reset();
}

void Interp::reset() {
  globals_.clear();
  executed_ = 0;
  for (const GlobalVar& g : program_.globals) {
    std::vector<int64_t> storage(static_cast<size_t>(scalarSlotCount(g.type)), 0);
    for (size_t i = 0; i < g.init.size() && i < storage.size(); ++i)
      storage[i] = g.init[i];
    globals_[g.name] = std::move(storage);
  }
}

int64_t Interp::wrapToType(int64_t v, const TypePtr& t) {
  PSCP_ASSERT(t && t->isInt());
  const uint32_t raw = truncBits(static_cast<uint32_t>(v), t->width());
  return t->isSigned() ? signExtend(raw, t->width()) : static_cast<int64_t>(raw);
}

int64_t Interp::globalValue(const std::string& name, int slot) const {
  auto it = globals_.find(name);
  if (it == globals_.end()) fail("no global named '%s'", name.c_str());
  PSCP_ASSERT(slot >= 0 && slot < static_cast<int>(it->second.size()));
  return it->second[static_cast<size_t>(slot)];
}

void Interp::setGlobalValue(const std::string& name, int64_t value, int slot) {
  auto it = globals_.find(name);
  if (it == globals_.end()) fail("no global named '%s'", name.c_str());
  PSCP_ASSERT(slot >= 0 && slot < static_cast<int>(it->second.size()));
  it->second[static_cast<size_t>(slot)] = value;
}

Interp::Binding Interp::bindLabelArg(const std::string& text, const TypePtr& paramType) {
  Binding b;
  switch (paramType->kind()) {
    case TypeKind::Event:
    case TypeKind::Cond:
      b.hardware = text;
      return b;
    case TypeKind::Struct:
    case TypeKind::Array: {
      auto it = globals_.find(text);
      if (it == globals_.end())
        fail("label argument '%s' does not name a global object", text.c_str());
      const GlobalVar* g = program_.findGlobal(text);
      PSCP_ASSERT(g != nullptr);
      if (!g->type->same(*paramType))
        fail("label argument '%s' has type %s, parameter needs %s", text.c_str(),
             g->type->str().c_str(), paramType->str().c_str());
      b.ref = {&it->second, 0, g->type};
      return b;
    }
    case TypeKind::Int: {
      // Number, enum constant, or scalar global.
      if (!text.empty() &&
          (std::isdigit(static_cast<unsigned char>(text[0])) != 0 || text[0] == '-')) {
        b.scalar = wrapToType(std::stoll(text, nullptr, 0), paramType);
        return b;
      }
      auto ec = program_.enumConstants.find(text);
      if (ec != program_.enumConstants.end()) {
        b.scalar = wrapToType(ec->second, paramType);
        return b;
      }
      const GlobalVar* g = program_.findGlobal(text);
      if (g != nullptr && g->type->isScalar()) {
        b.scalar = wrapToType(globals_.at(text)[0], paramType);
        return b;
      }
      fail("label argument '%s' is not a number, enum constant, or scalar global",
           text.c_str());
    }
    default:
      fail("parameter type %s cannot be bound from a label", paramType->str().c_str());
  }
}

int64_t Interp::callFromLabel(const std::string& function,
                              const std::vector<std::string>& args) {
  const Function& fn = program_.function(function);
  if (fn.params.size() != args.size())
    fail("label call %s: expected %zu arguments, got %zu", function.c_str(),
         fn.params.size(), args.size());
  std::vector<Binding> bindings;
  bindings.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i)
    bindings.push_back(bindLabelArg(args[i], fn.params[i].type));
  return invoke(fn, std::move(bindings));
}

int64_t Interp::call(const std::string& function, const std::vector<int64_t>& args) {
  const Function& fn = program_.function(function);
  if (fn.params.size() != args.size())
    fail("call %s: expected %zu arguments, got %zu", function.c_str(),
         fn.params.size(), args.size());
  std::vector<Binding> bindings(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    if (!fn.params[i].type->isScalar())
      fail("call %s: argument %zu is not scalar", function.c_str(), i + 1);
    bindings[i].scalar = wrapToType(args[i], fn.params[i].type);
  }
  return invoke(fn, std::move(bindings));
}

int64_t Interp::invoke(const Function& fn, std::vector<Binding> args) {
  if (++callDepth_ > 64) fail("call depth exceeded in '%s'", fn.name.c_str());
  Frame frame;
  for (size_t i = 0; i < fn.params.size(); ++i)
    frame.locals[fn.params[i].name] = std::move(args[i]);
  retval_ = 0;
  for (const StmtPtr& s : fn.body)
    if (execStmt(*s, frame)) break;
  --callDepth_;
  return retval_;
}

bool Interp::execStmt(const Stmt& s, Frame& frame) {
  ++executed_;
  switch (s.kind) {
    case StmtKind::Block:
      for (const StmtPtr& inner : s.body)
        if (execStmt(*inner, frame)) return true;
      return false;
    case StmtKind::VarDecl: {
      if (s.varType->isScalar()) {
        Binding b;
        b.scalar = s.expr ? wrapToType(evalExpr(*s.expr, frame), s.varType) : 0;
        frame.locals[s.varName] = std::move(b);
      } else {
        auto& storage = frame.localStorage[s.varName];
        storage.assign(static_cast<size_t>(scalarSlotCount(s.varType)), 0);
        Binding b;
        b.ref = {&storage, 0, s.varType};
        frame.locals[s.varName] = std::move(b);
      }
      return false;
    }
    case StmtKind::Assign:
      storeScalar(*s.lhs, frame, evalExpr(*s.expr, frame));
      return false;
    case StmtKind::If: {
      const std::vector<StmtPtr>& branch =
          (evalExpr(*s.expr, frame) != 0) ? s.body : s.elseBody;
      for (const StmtPtr& inner : branch)
        if (execStmt(*inner, frame)) return true;
      return false;
    }
    case StmtKind::While: {
      int64_t iterations = 0;
      while (evalExpr(*s.expr, frame) != 0) {
        if (++iterations > s.loopBound)
          failAt(s.loc, "loop exceeded its declared bound of %lld",
                 static_cast<long long>(s.loopBound));
        for (const StmtPtr& inner : s.body)
          if (execStmt(*inner, frame)) return true;
      }
      return false;
    }
    case StmtKind::Return:
      retval_ = s.expr ? evalExpr(*s.expr, frame) : 0;
      return true;
    case StmtKind::ExprStmt:
      evalExpr(*s.expr, frame);
      return false;
  }
  return false;
}

Interp::ObjectRef Interp::resolveObject(const Expr& e, Frame& frame) {
  switch (e.kind) {
    case ExprKind::VarRef: {
      auto it = frame.locals.find(e.name);
      if (it != frame.locals.end()) {
        PSCP_ASSERT(it->second.ref.data != nullptr);
        return it->second.ref;
      }
      auto git = globals_.find(e.name);
      if (git == globals_.end()) fail("unknown object '%s'", e.name.c_str());
      const GlobalVar* g = program_.findGlobal(e.name);
      return {&git->second, 0, g->type};
    }
    case ExprKind::Member: {
      ObjectRef base = resolveObject(*e.children[0], frame);
      const int off = scalarFieldOffset(base.type, e.name);
      return {base.data, base.offset + off, base.type->fieldType(e.name)};
    }
    case ExprKind::Index: {
      ObjectRef base = resolveObject(*e.children[0], frame);
      const int64_t ix = evalExpr(*e.children[1], frame);
      if (ix < 0 || ix >= base.type->arrayCount())
        failAt(e.loc, "array index %lld out of bounds [0, %d)",
               static_cast<long long>(ix), base.type->arrayCount());
      const int stride = scalarSlotCount(base.type->element());
      return {base.data, base.offset + static_cast<int>(ix) * stride,
              base.type->element()};
    }
    default:
      failAt(e.loc, "expression is not an object reference");
  }
}

void Interp::storeScalar(const Expr& lvalue, Frame& frame, int64_t value) {
  // Fast path: scalar local.
  if (lvalue.kind == ExprKind::VarRef) {
    auto it = frame.locals.find(lvalue.name);
    if (it != frame.locals.end() && it->second.ref.data == nullptr) {
      it->second.scalar = wrapToType(value, lvalue.type);
      return;
    }
  }
  ObjectRef ref = resolveObject(lvalue, frame);
  PSCP_ASSERT(ref.type->isScalar());
  (*ref.data)[static_cast<size_t>(ref.offset)] = wrapToType(value, ref.type);
}

std::string Interp::hardwareNameOf(const Expr& arg, Frame& frame) {
  PSCP_ASSERT(arg.kind == ExprKind::VarRef);
  auto it = frame.locals.find(arg.name);
  if (it != frame.locals.end() && !it->second.hardware.empty())
    return it->second.hardware;  // pass-through event/cond parameter
  return arg.name;
}

int64_t Interp::evalIntrinsic(const Expr& e, Frame& frame) {
  if (e.name == "raise") {
    env_.raiseEvent(hardwareNameOf(*e.children[0], frame));
    return 0;
  }
  if (e.name == "set_cond") {
    const int64_t v = evalExpr(*e.children[1], frame);
    env_.setCondition(hardwareNameOf(*e.children[0], frame), v != 0);
    return 0;
  }
  if (e.name == "test_cond")
    return env_.testCondition(hardwareNameOf(*e.children[0], frame)) ? 1 : 0;
  if (e.name == "read_port")
    return static_cast<int64_t>(env_.readPort(hardwareNameOf(*e.children[0], frame)));
  if (e.name == "write_port") {
    const int64_t v = evalExpr(*e.children[1], frame);
    env_.writePort(hardwareNameOf(*e.children[0], frame),
                   static_cast<uint32_t>(v));
    return 0;
  }
  if (e.name == "in_state")
    return env_.inState(hardwareNameOf(*e.children[0], frame)) ? 1 : 0;
  PSCP_ASSERT(false);
}

int64_t Interp::evalExpr(const Expr& e, Frame& frame) {
  if (e.constant.has_value() && e.kind != ExprKind::Call)
    return wrapToType(*e.constant, e.type);
  switch (e.kind) {
    case ExprKind::IntLit:
      return wrapToType(e.value, e.type);
    case ExprKind::VarRef: {
      auto it = frame.locals.find(e.name);
      if (it != frame.locals.end()) {
        if (it->second.ref.data != nullptr)
          failAt(e.loc, "aggregate '%s' used as a scalar", e.name.c_str());
        return it->second.scalar;
      }
      ObjectRef ref = resolveObject(e, frame);
      PSCP_ASSERT(ref.type->isScalar());
      return (*ref.data)[static_cast<size_t>(ref.offset)];
    }
    case ExprKind::Member:
    case ExprKind::Index: {
      ObjectRef ref = resolveObject(e, frame);
      if (!ref.type->isScalar()) failAt(e.loc, "aggregate used as a scalar");
      return (*ref.data)[static_cast<size_t>(ref.offset)];
    }
    case ExprKind::Unary: {
      const int64_t v = evalExpr(*e.children[0], frame);
      switch (e.unOp) {
        case UnOp::Neg: return wrapToType(-v, e.type);
        case UnOp::BitNot: return wrapToType(~v, e.type);
        case UnOp::LogNot: return (v == 0) ? 1 : 0;
      }
      return 0;
    }
    case ExprKind::Binary: {
      // Short-circuit forms first.
      if (e.binOp == BinOp::LogAnd) {
        if (evalExpr(*e.children[0], frame) == 0) return 0;
        return (evalExpr(*e.children[1], frame) != 0) ? 1 : 0;
      }
      if (e.binOp == BinOp::LogOr) {
        if (evalExpr(*e.children[0], frame) != 0) return 1;
        return (evalExpr(*e.children[1], frame) != 0) ? 1 : 0;
      }
      const int64_t a = evalExpr(*e.children[0], frame);
      const int64_t b = evalExpr(*e.children[1], frame);
      switch (e.binOp) {
        case BinOp::Add: return wrapToType(a + b, e.type);
        case BinOp::Sub: return wrapToType(a - b, e.type);
        case BinOp::Mul: return wrapToType(a * b, e.type);
        case BinOp::Div:
          if (b == 0) failAt(e.loc, "division by zero");
          return wrapToType(a / b, e.type);
        case BinOp::Mod:
          if (b == 0) failAt(e.loc, "modulo by zero");
          return wrapToType(a % b, e.type);
        case BinOp::And: return wrapToType(a & b, e.type);
        case BinOp::Or: return wrapToType(a | b, e.type);
        case BinOp::Xor: return wrapToType(a ^ b, e.type);
        case BinOp::Shl: return wrapToType(a << (b & 31), e.type);
        case BinOp::Shr: return wrapToType(a >> (b & 31), e.type);
        case BinOp::Eq: return (a == b) ? 1 : 0;
        case BinOp::Ne: return (a != b) ? 1 : 0;
        case BinOp::Lt: return (a < b) ? 1 : 0;
        case BinOp::Le: return (a <= b) ? 1 : 0;
        case BinOp::Gt: return (a > b) ? 1 : 0;
        case BinOp::Ge: return (a >= b) ? 1 : 0;
        case BinOp::LogAnd:
        case BinOp::LogOr:
          break;  // handled above
      }
      return 0;
    }
    case ExprKind::Call: {
      if (isIntrinsicName(e.name)) return evalIntrinsic(e, frame);
      const Function& fn = program_.function(e.name);
      std::vector<Binding> args;
      args.reserve(e.children.size());
      for (size_t i = 0; i < e.children.size(); ++i) {
        const TypePtr& pt = fn.params[i].type;
        Binding b;
        switch (pt->kind()) {
          case TypeKind::Event:
          case TypeKind::Cond:
            b.hardware = hardwareNameOf(*e.children[i], frame);
            break;
          case TypeKind::Struct:
          case TypeKind::Array:
            b.ref = resolveObject(*e.children[i], frame);
            break;
          default:
            b.scalar = wrapToType(evalExpr(*e.children[i], frame), pt);
        }
        args.push_back(std::move(b));
      }
      const int64_t saved = retval_;
      const int64_t result = invoke(fn, std::move(args));
      retval_ = saved;
      return result;
    }
  }
  return 0;
}

}  // namespace pscp::actionlang
