// Type system of the extended-C action language (paper Fig. 2b).
//
// The notation deviates from C in allowing explicit bit widths on integer
// types ("int:16", "uint:4") and binary constants ("B:001011"); careful
// range specification lets the ASIP generator pick minimal datapaths.
// Beyond integers the language has enums (compile-time integer constants),
// structs, fixed-size arrays, and two binding-time-only types used for
// hardware objects: `event` and `cond` parameters, which must be bound to
// statically known event/condition names at each call site.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/bits.hpp"
#include "support/diag.hpp"

namespace pscp::actionlang {

enum class TypeKind {
  Void,
  Int,     ///< signed or unsigned, explicit width 1..32
  Struct,
  Array,
  Event,   ///< label-binding-time only: names an event
  Cond,    ///< label-binding-time only: names a condition
};

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// Immutable type descriptor. Shared by AST nodes and symbol tables.
class Type {
 public:
  static TypePtr voidType();
  static TypePtr intType(int width, bool isSigned = true);
  static TypePtr eventType();
  static TypePtr condType();
  static TypePtr structType(std::string name,
                            std::vector<std::pair<std::string, TypePtr>> fields);
  static TypePtr arrayType(TypePtr element, int count);

  [[nodiscard]] TypeKind kind() const { return kind_; }
  [[nodiscard]] bool isInt() const { return kind_ == TypeKind::Int; }
  [[nodiscard]] bool isScalar() const { return kind_ == TypeKind::Int; }
  [[nodiscard]] bool isSigned() const { return signed_; }
  [[nodiscard]] int width() const { return width_; }  ///< Int only
  [[nodiscard]] const std::string& structName() const { return name_; }
  [[nodiscard]] const std::vector<std::pair<std::string, TypePtr>>& fields() const {
    return fields_;
  }
  [[nodiscard]] const TypePtr& element() const { return element_; }
  [[nodiscard]] int arrayCount() const { return count_; }

  /// Size in bytes when laid out in TEP data memory (byte-addressed; an
  /// int:N occupies ceil(N/8) bytes; structs/arrays are packed fields).
  [[nodiscard]] int byteSize() const;

  /// Byte offset of a struct field; throws if absent.
  [[nodiscard]] int fieldOffset(const std::string& field) const;
  [[nodiscard]] TypePtr fieldType(const std::string& field) const;

  [[nodiscard]] std::string str() const;

  /// Structural equality (structs compare by name).
  [[nodiscard]] bool same(const Type& other) const;

 private:
  Type() = default;

  TypeKind kind_ = TypeKind::Void;
  bool signed_ = true;
  int width_ = 0;
  std::string name_;
  std::vector<std::pair<std::string, TypePtr>> fields_;
  TypePtr element_;
  int count_ = 0;
};

}  // namespace pscp::actionlang
