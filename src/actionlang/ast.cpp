#include "actionlang/ast.hpp"

#include <array>

namespace pscp::actionlang {

const char* binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::And: return "&";
    case BinOp::Or: return "|";
    case BinOp::Xor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::LogAnd: return "&&";
    case BinOp::LogOr: return "||";
  }
  return "?";
}

const char* unOpName(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::BitNot: return "~";
    case UnOp::LogNot: return "!";
  }
  return "?";
}

std::string Expr::str() const {
  switch (kind) {
    case ExprKind::IntLit:
      return std::to_string(value);
    case ExprKind::VarRef:
      return name;
    case ExprKind::Member:
      return children[0]->str() + "." + name;
    case ExprKind::Index:
      return children[0]->str() + "[" + children[1]->str() + "]";
    case ExprKind::Unary:
      return std::string(unOpName(unOp)) + "(" + children[0]->str() + ")";
    case ExprKind::Binary:
      return "(" + children[0]->str() + " " + binOpName(binOp) + " " +
             children[1]->str() + ")";
    case ExprKind::Call: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i != 0) out += ", ";
        out += children[i]->str();
      }
      return out + ")";
    }
  }
  return "?";
}

ExprPtr makeIntLit(int64_t value, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->value = value;
  e->loc = std::move(loc);
  return e;
}

ExprPtr makeVarRef(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::VarRef;
  e->name = std::move(name);
  e->loc = std::move(loc);
  return e;
}

const Function* Program::findFunction(const std::string& name) const {
  for (const Function& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const Function& Program::function(const std::string& name) const {
  const Function* f = findFunction(name);
  if (f == nullptr) fail("no function named '%s'", name.c_str());
  return *f;
}

const GlobalVar* Program::findGlobal(const std::string& name) const {
  for (const GlobalVar& g : globals)
    if (g.name == name) return &g;
  return nullptr;
}

GlobalVar* Program::findGlobal(const std::string& name) {
  for (GlobalVar& g : globals)
    if (g.name == name) return &g;
  return nullptr;
}

bool isIntrinsicName(const std::string& name) {
  return name == "raise" || name == "set_cond" || name == "test_cond" ||
         name == "read_port" || name == "write_port" || name == "in_state";
}

}  // namespace pscp::actionlang
