// FPGA device models and a block floorplanner (paper Sec. 5 / Fig. 8).
//
// "Our target platform is based on FPGAs, which requires special
//  consideration of the limited available hardware resources and of the
//  attainable system speeds. ... The result fits on a single Xilinx
//  XC4025 FPGA, which contains 1024 CLBs."
//
// We model the XC4000 family as CLB grids; "synthesis" in this repro is
// CLB accounting plus a greedy strip floorplanner that renders the Fig. 8
// style placement as ASCII art.
#pragma once

#include <string>
#include <vector>

#include "support/diag.hpp"

namespace pscp::fpga {

struct Device {
  std::string name;
  int rows = 0;
  int cols = 0;

  [[nodiscard]] int clbs() const { return rows * cols; }
};

/// The XC4000 parts of the 1994 Xilinx data book the paper cites.
[[nodiscard]] const std::vector<Device>& xc4000Family();
[[nodiscard]] const Device& deviceByName(const std::string& name);
/// Smallest family member with at least `clbs` CLBs; throws if none fits.
[[nodiscard]] const Device& smallestFitting(double clbs);

// ------------------------------------------------------------- floorplan

struct Block {
  std::string name;
  double clbs = 0.0;
};

struct PlacedBlock {
  Block block;
  int row = 0;
  int col = 0;
  int width = 0;
  int height = 0;
  char glyph = '?';
};

class Floorplan {
 public:
  /// Greedy strip packing of blocks (largest first) onto the device grid.
  /// Throws if the blocks do not fit.
  Floorplan(const Device& device, std::vector<Block> blocks);

  [[nodiscard]] const std::vector<PlacedBlock>& placements() const { return placed_; }
  [[nodiscard]] double utilization() const;  ///< fraction of CLBs occupied

  /// ASCII rendering (one character per CLB) plus a legend.
  [[nodiscard]] std::string render() const;

 private:
  Device device_;
  std::vector<PlacedBlock> placed_;
};

}  // namespace pscp::fpga
