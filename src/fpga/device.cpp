#include "fpga/device.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace pscp::fpga {

const std::vector<Device>& xc4000Family() {
  static const std::vector<Device> family = {
      {"XC4002", 8, 8},    {"XC4003", 10, 10}, {"XC4005", 14, 14},
      {"XC4006", 16, 16},  {"XC4008", 18, 18}, {"XC4010", 20, 20},
      {"XC4013", 24, 24},  {"XC4020", 28, 28}, {"XC4025", 32, 32},
  };
  return family;
}

const Device& deviceByName(const std::string& name) {
  for (const Device& d : xc4000Family())
    if (d.name == name) return d;
  fail("unknown FPGA device '%s'", name.c_str());
}

const Device& smallestFitting(double clbs) {
  for (const Device& d : xc4000Family())
    if (d.clbs() >= clbs) return d;
  fail("no XC4000 device offers %.0f CLBs (largest is %d)", clbs,
       xc4000Family().back().clbs());
}

Floorplan::Floorplan(const Device& device, std::vector<Block> blocks)
    : device_(device) {
  double total = 0.0;
  for (const Block& b : blocks) total += b.clbs;
  if (total > device.clbs())
    fail("design needs %.0f CLBs, %s offers only %d", total, device.name.c_str(),
         device.clbs());

  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.clbs > b.clbs; });

  // Skyline (bottom-left) packing: for each block try shapes from
  // near-square to flat, and drop it at the column window with the lowest
  // resulting top edge.
  std::vector<int> skyline(static_cast<size_t>(device.cols), 0);
  char glyph = 'A';
  for (const Block& b : blocks) {
    if (b.clbs <= 0.0) continue;
    const int cells = std::max(1, static_cast<int>(std::ceil(b.clbs)));
    const int squareH = std::max(1, static_cast<int>(std::round(std::sqrt(cells))));

    int bestTop = device.rows + 1;
    int bestCol = -1;
    int bestW = 0;
    int bestH = 0;
    for (int h = std::min(squareH, device.rows); h >= 1; --h) {
      const int w = std::min(device.cols, (cells + h - 1) / h);
      for (int col = 0; col + w <= device.cols; ++col) {
        int base = 0;
        for (int c = col; c < col + w; ++c)
          base = std::max(base, skyline[static_cast<size_t>(c)]);
        const int top = base + h;
        if (top <= device.rows && top < bestTop) {
          bestTop = top;
          bestCol = col;
          bestW = w;
          bestH = h;
        }
      }
      if (bestCol != -1 && h <= squareH - 2) break;  // good enough shape found
    }
    if (bestCol == -1)
      fail("floorplanner cannot place '%s' (%d cells)", b.name.c_str(), cells);

    PlacedBlock pb;
    pb.block = b;
    pb.row = bestTop - bestH;
    pb.col = bestCol;
    pb.width = bestW;
    pb.height = bestH;
    pb.glyph = glyph;
    placed_.push_back(pb);
    for (int c = bestCol; c < bestCol + bestW; ++c)
      skyline[static_cast<size_t>(c)] = bestTop;
    glyph = glyph == 'Z' ? 'a' : static_cast<char>(glyph + 1);
  }
}

double Floorplan::utilization() const {
  double used = 0.0;
  for (const PlacedBlock& p : placed_) used += p.block.clbs;
  return used / device_.clbs();
}

std::string Floorplan::render() const {
  std::vector<std::string> grid(static_cast<size_t>(device_.rows),
                                std::string(static_cast<size_t>(device_.cols), '.'));
  for (const PlacedBlock& p : placed_)
    for (int r = p.row; r < p.row + p.height && r < device_.rows; ++r)
      for (int c = p.col; c < p.col + p.width && c < device_.cols; ++c)
        grid[static_cast<size_t>(r)][static_cast<size_t>(c)] = p.glyph;

  std::string out = strfmt("%s floorplan (%dx%d CLBs, %.0f%% used)\n",
                           device_.name.c_str(), device_.rows, device_.cols,
                           utilization() * 100.0);
  for (const std::string& row : grid) out += "  " + row + "\n";
  out += "legend:\n";
  for (const PlacedBlock& p : placed_)
    out += strfmt("  %c  %-28s %6.1f CLBs\n", p.glyph, p.block.name.c_str(),
                  p.block.clbs);
  return out;
}

}  // namespace pscp::fpga
