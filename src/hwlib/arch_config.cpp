#include "hwlib/arch_config.hpp"

#include <algorithm>

namespace pscp::hwlib {

void ArchConfig::validate() const {
  if (dataWidth != 8 && dataWidth != 16 && dataWidth != 32)
    fail("unsupported data width %d (library offers 8/16/32)", dataWidth);
  if (numTeps < 1 || numTeps > 8)
    fail("number of TEPs %d out of range [1, 8]", numTeps);
  if (registerFileSize < 0 || registerFileSize > 16)
    fail("register file size %d out of range [0, 16]", registerFileSize);
  if (internalRamBytes < 0 || internalRamBytes > 4096)
    fail("internal RAM size %d out of range [0, 4096]", internalRamBytes);
  if (clockMhz <= 0.0) fail("clock must be positive");
  for (const CustomInstr& ci : customInstructions)
    if (ci.delayNs > clockPeriodNs())
      fail("custom instruction '%s' (%.1f ns) exceeds the clock period (%.1f ns)",
           ci.name.c_str(), ci.delayNs, clockPeriodNs());
}

std::string ArchConfig::describe() const {
  std::string out = strfmt("%dbit", dataWidth);
  if (hasMulDiv) out += " M/D";
  out += " TEP";
  if (numTeps > 1) out += strfmt(" x%d", numTeps);
  if (registerFileSize > 0) out += strfmt(", %d regs", registerFileSize);
  if (hasBarrelShifter) out += ", barrel";
  if (pipelinedFetch) out += ", pipelined";
  if (hasComparator) out += ", cmp";
  if (hasTwosComplement) out += ", neg";
  if (!customInstructions.empty())
    out += strfmt(", %zu custom", customInstructions.size());
  return out;
}

std::vector<SelectedComponent> tepComponents(const ArchConfig& config, int microWords) {
  std::vector<SelectedComponent> parts;
  const int w = config.dataWidth;
  parts.push_back({ComponentId::CalcUnitCore, w, 1});
  if (config.hasMulDiv) parts.push_back({ComponentId::MulDivUnit, w, 1});
  if (config.hasBarrelShifter) parts.push_back({ComponentId::BarrelShifter, w, 1});
  if (config.hasComparator) parts.push_back({ComponentId::Comparator, w, 1});
  if (config.hasTwosComplement) parts.push_back({ComponentId::TwosComplementer, w, 1});
  if (config.pipelinedFetch)  // prefetch buffer + bypass muxes
    parts.push_back({ComponentId::InstructionFetch, w, 1});
  if (config.registerFileSize > 0)
    parts.push_back({ComponentId::RegisterFile, w, config.registerFileSize});
  if (config.internalRamBytes > 0)
    parts.push_back({ComponentId::InternalRam, w, config.internalRamBytes});
  parts.push_back({ComponentId::ExternalRamIf, w, 1});
  parts.push_back({ComponentId::MicroSequencer, w, 1});
  parts.push_back({ComponentId::MicrocodeRom, w, std::max(microWords, 1)});
  parts.push_back({ComponentId::InstructionFetch, w, 1});
  parts.push_back({ComponentId::TransitionRegs, w, 1});
  parts.push_back({ComponentId::BusInterface, w, 1});
  return parts;
}

double tepArea(const ArchConfig& config, int microWords) {
  double area = totalArea(tepComponents(config, microWords));
  // ALU style scales only the calculation unit core.
  area += componentArea(ComponentId::CalcUnitCore, config.dataWidth) *
          (aluStyleAreaFactor(config.aluStyle) - 1.0);
  for (const CustomInstr& ci : config.customInstructions) area += ci.areaClb;
  return area;
}

double sharedArea(const ArchConfig& config, const ChartHardwareStats& stats) {
  // SLA: two-level logic, ~1 CLB per 2 product terms (wide AND + OR share a
  // CLB column). CR: flip-flop pairs per CLB. Transition address table: one
  // entry per transition. Scheduler grows mildly with TEP count (round-
  // robin arbitration + condition-cache copy logic per TEP).
  const double sla = stats.productTerms / 2.0;
  const double cr = stats.crBits / 2.0;
  const double tat = stats.transitions / 2.0;
  const double portArea =
      componentArea(ComponentId::PortInterface, config.dataWidth) * stats.ports;
  const double scheduler = 10.0 + 4.0 * config.numTeps;
  return sla + cr + tat + portArea + scheduler;
}

ArchConfig analysisArch() {
  ArchConfig arch;
  arch.dataWidth = 16;
  arch.hasMulDiv = true;
  arch.registerFileSize = 8;
  arch.internalRamBytes = 1024;
  arch.numTeps = 2;
  return arch;
}

double systemArea(const ArchConfig& config, const ChartHardwareStats& stats,
                  int microWords) {
  return sharedArea(config, stats) + config.numTeps * tepArea(config, microWords);
}

double calcUnitCriticalPathNs(const ArchConfig& config) {
  double path = componentDelayNs(ComponentId::CalcUnitCore, config.dataWidth) *
                aluStyleDelayFactor(config.aluStyle);
  if (config.hasBarrelShifter)
    path = std::max(path, componentDelayNs(ComponentId::BarrelShifter, config.dataWidth));
  for (const CustomInstr& ci : config.customInstructions)
    path = std::max(path, ci.delayNs);
  return path;
}

}  // namespace pscp::hwlib
