// Hardware component library (paper Sec. 3.3).
//
// "The TEP of an application is derived from a library of elements
//  consisting of hardware building blocks and associated microinstruction
//  sequences. The main library elements are calculation units of varying
//  size and functionality. ... The library also contains several storage
//  alternatives: fast, but more expensive registers, moderately fast and
//  moderately expensive internal RAM, and slower, but cheaper external RAM."
//
// Every component carries an area model in Xilinx XC4000 CLBs and a
// combinational delay model in nanoseconds. The area model is calibrated
// so that the paper's Table 4 architectures land in the reported ballpark
// (minimal TEP system = 224 CLBs, 16-bit M/D TEP system = 421, two TEPs =
// 773 on an XC4025 with 1024 CLBs); the delay model drives the custom-
// instruction critical-path limit.
#pragma once

#include <string>
#include <vector>

#include "support/diag.hpp"

namespace pscp::hwlib {

enum class ComponentId {
  CalcUnitCore,      ///< accumulator + operand register + basic ALU
  MulDivUnit,        ///< hardware multiply/divide extension
  BarrelShifter,     ///< single-cycle shift unit
  Comparator,        ///< dedicated equality/relation comparator (pattern opt.)
  TwosComplementer,  ///< single-cycle negate unit (pattern opt.)
  RegisterFile,      ///< per-register cost (fast storage alternative)
  InternalRam,       ///< on-chip RAM, cost per byte (moderate storage)
  ExternalRamIf,     ///< interface to off-chip RAM (cheap storage, slow)
  MicroSequencer,    ///< microprogram counter + decode logic
  MicrocodeRom,      ///< microprogram store, cost per 16-bit microword
  PortInterface,     ///< event/condition/data port block (per port)
  TransitionRegs,    ///< transition address/trigger registers + SLA link
  BusInterface,      ///< shared event/condition/data bus attach
  InstructionFetch,  ///< PC, IR, program memory interface (Harvard side)
};

[[nodiscard]] const char* componentName(ComponentId id);

/// Area in CLBs for one instance at the given datapath width (bits).
/// Width-independent components ignore `width`.
[[nodiscard]] double componentArea(ComponentId id, int width);

/// Worst-case combinational delay contribution in nanoseconds at `width`.
[[nodiscard]] double componentDelayNs(ComponentId id, int width);

/// One selected element of a concrete TEP configuration.
struct SelectedComponent {
  ComponentId id;
  int width = 8;
  int count = 1;  ///< registers: #registers; RAM: #bytes; ROM: #microwords
};

/// Total CLB area of a selection.
[[nodiscard]] double totalArea(const std::vector<SelectedComponent>& parts);

/// ALU styles offered by the library ("several styles of ALUs ... are
/// available"). Ripple is smallest/slowest, carry-select fastest/largest.
enum class AluStyle { Ripple, CarryLookahead, CarrySelect };

[[nodiscard]] const char* aluStyleName(AluStyle s);
/// Multiplicative area / delay factors applied to the CalcUnitCore.
[[nodiscard]] double aluStyleAreaFactor(AluStyle s);
[[nodiscard]] double aluStyleDelayFactor(AluStyle s);

}  // namespace pscp::hwlib
