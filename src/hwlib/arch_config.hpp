// ArchConfig: the full description of one concrete PSCP instance.
//
// "Our ASIP architecture is scalable with respect to the number of
//  processing elements as well as parameters such as bus widths and
//  register file sizes."
//
// The design-space explorer (src/explore) mutates an ArchConfig along the
// optimization ladder of Sec. 4; the compiler, microcode generator, timing
// analysis, and area model all consume it.
#pragma once

#include <string>
#include <vector>

#include "hwlib/components.hpp"

namespace pscp::hwlib {

/// Primitive operations a custom instruction may chain combinationally.
enum class CustomOp { Add, Sub, And, Or, Xor, Shl, Shr, Sar, Neg, Not };

/// One stage of a custom instruction's combinational chain. The chain
/// starts from ACC; each stage combines the running value with either the
/// OP register or a hardwired constant.
struct CustomStep {
  CustomOp op = CustomOp::Add;
  bool useConst = false;
  int32_t konst = 0;

  [[nodiscard]] bool operator==(const CustomStep&) const = default;
};

/// A generated custom single-cycle instruction (Sec. 3.3: "simple
/// components such as shifters and registers can be combined to custom
/// operations, which are derived from the assembler code. These
/// instructions execute within one clock cycle. Care must be taken that
/// such instructions do not become the critical paths inside the TEP.").
struct CustomInstr {
  std::string name;          ///< e.g. "cust_add_shl2"
  std::string signature;     ///< canonical expression shape it replaces
  std::vector<CustomStep> steps;
  int width = 16;            ///< datapath width of the fused chain
  double areaClb = 0.0;      ///< extra datapath area
  double delayNs = 0.0;      ///< combinational depth (must fit the clock)

  [[nodiscard]] bool operator==(const CustomInstr&) const = default;
};

struct ArchConfig {
  // ------------------------------------------------------------- datapath
  int dataWidth = 8;            ///< data bus / ALU width (8 or 16)
  AluStyle aluStyle = AluStyle::Ripple;
  bool hasMulDiv = false;       ///< hardware multiply/divide unit
  bool hasBarrelShifter = false;///< multi-bit shifts in one cycle
  bool hasComparator = false;   ///< pattern-matched "if (a == b)" unit
  bool hasTwosComplement = false; ///< pattern-matched "x = -x" unit
  /// Pipelined instruction fetch (paper Sec. 6 future work): prefetch
  /// overlaps execution; straight-line instructions save the fetch state,
  /// control transfers still pay it (prefetch flush).
  bool pipelinedFetch = false;
  int registerFileSize = 0;     ///< general registers beyond ACC/OP
  int internalRamBytes = 32;    ///< on-chip RAM
  std::vector<CustomInstr> customInstructions;

  // -------------------------------------------------------------- machine
  int numTeps = 1;
  double clockMhz = 15.0;       ///< the paper's reference clock

  [[nodiscard]] double clockPeriodNs() const { return 1000.0 / clockMhz; }

  /// Chunks a `width`-bit value occupies on this datapath.
  [[nodiscard]] int chunksFor(int width) const {
    return (width + dataWidth - 1) / dataWidth;
  }

  /// Bytes per datapath word.
  [[nodiscard]] int bytesPerWord() const { return dataWidth / 8; }

  /// Throws pscp::Error if the configuration is inconsistent.
  void validate() const;

  /// Human-readable one-line summary, e.g. "16bit M/D TEP x2, 4 regs".
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const ArchConfig&) const = default;
};

/// The reference configuration the static-analysis front ends compile
/// charts under (pscp_lint, pscp_check, pscp_replay --chart): roomy enough
/// that any reasonable chart builds, and — critically — a single shared
/// definition, because the journal image content hash covers the compiled
/// TEP program: a witness journal emitted by one tool only replays in
/// another if both compiled the chart under the same arch.
[[nodiscard]] ArchConfig analysisArch();

/// Statistics of the synthesized statechart front end needed for the
/// shared (non-TEP) area: SLA product terms, CR bits, ports, transitions.
struct ChartHardwareStats {
  int productTerms = 0;
  int crBits = 0;
  int ports = 0;
  int transitions = 0;
};

/// Per-TEP component selection implied by the configuration (including the
/// microcode ROM sized from `microWords`).
[[nodiscard]] std::vector<SelectedComponent> tepComponents(const ArchConfig& config,
                                                           int microWords);

/// CLB area of one TEP.
[[nodiscard]] double tepArea(const ArchConfig& config, int microWords);

/// CLB area of the shared machine blocks (SLA, CR, transition address
/// table, scheduler, buses) for a chart of the given size.
[[nodiscard]] double sharedArea(const ArchConfig& config, const ChartHardwareStats& stats);

/// Total system area: shared + numTeps * per-TEP.
[[nodiscard]] double systemArea(const ArchConfig& config, const ChartHardwareStats& stats,
                                int microWords);

/// Worst-case combinational delay through the configured calculation unit;
/// the custom-instruction generator must keep fused expressions below the
/// clock period.
[[nodiscard]] double calcUnitCriticalPathNs(const ArchConfig& config);

}  // namespace pscp::hwlib
