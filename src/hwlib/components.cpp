#include "hwlib/components.hpp"

namespace pscp::hwlib {

const char* componentName(ComponentId id) {
  switch (id) {
    case ComponentId::CalcUnitCore: return "calc-unit";
    case ComponentId::MulDivUnit: return "mul/div-unit";
    case ComponentId::BarrelShifter: return "barrel-shifter";
    case ComponentId::Comparator: return "comparator";
    case ComponentId::TwosComplementer: return "twos-complementer";
    case ComponentId::RegisterFile: return "register-file";
    case ComponentId::InternalRam: return "internal-ram";
    case ComponentId::ExternalRamIf: return "external-ram-if";
    case ComponentId::MicroSequencer: return "micro-sequencer";
    case ComponentId::MicrocodeRom: return "microcode-rom";
    case ComponentId::PortInterface: return "port-interface";
    case ComponentId::TransitionRegs: return "transition-regs";
    case ComponentId::BusInterface: return "bus-interface";
    case ComponentId::InstructionFetch: return "instruction-fetch";
  }
  return "?";
}

namespace {
/// Linear-in-width area models, CLBs. An XC4000 CLB holds two 4-input LUTs
/// and two flip-flops, so a W-bit register is ~W/2 CLBs and a W-bit ripple
/// ALU slice ~W CLBs plus control overhead.
double widthUnits(int width) { return width / 8.0; }
}  // namespace

double componentArea(ComponentId id, int width) {
  const double w = widthUnits(width);
  switch (id) {
    case ComponentId::CalcUnitCore: return 14.0 * w + 10.0;  // ACC+OP+ALU+flags
    case ComponentId::MulDivUnit: return 36.0 * w + 4.0;
    case ComponentId::BarrelShifter: return 6.0 * w + 2.0;
    case ComponentId::Comparator: return 3.0 * w + 1.0;
    case ComponentId::TwosComplementer: return 2.5 * w + 1.0;
    case ComponentId::RegisterFile: return 4.0 * w;          // per register
    case ComponentId::InternalRam: return 0.25;              // per byte (CLB RAM)
    case ComponentId::ExternalRamIf: return 12.0;
    case ComponentId::MicroSequencer: return 24.0;
    case ComponentId::MicrocodeRom: return 1.0 / 16.0;       // per microword
    case ComponentId::PortInterface: return 2.5;             // per port
    case ComponentId::TransitionRegs: return 14.0;
    case ComponentId::BusInterface: return 8.0 * w + 4.0;
    case ComponentId::InstructionFetch: return 18.0;
  }
  return 0.0;
}

double componentDelayNs(ComponentId id, int width) {
  // XC4000-4 era: ~6 ns per logic level + ~4 ns routing per stage. A
  // ripple-carry chain costs ~1.5 ns per bit beyond the first nibble.
  switch (id) {
    case ComponentId::CalcUnitCore: return 14.0 + 1.5 * width;
    case ComponentId::MulDivUnit: return 30.0 + 2.0 * width;  // iterative unit, per step
    case ComponentId::BarrelShifter: return 10.0 + 0.6 * width;
    case ComponentId::Comparator: return 8.0 + 0.8 * width;
    case ComponentId::TwosComplementer: return 8.0 + 1.0 * width;
    case ComponentId::RegisterFile: return 6.0;
    case ComponentId::InternalRam: return 12.0;
    case ComponentId::ExternalRamIf: return 35.0;
    case ComponentId::MicroSequencer: return 10.0;
    case ComponentId::MicrocodeRom: return 8.0;
    case ComponentId::PortInterface: return 9.0;
    case ComponentId::TransitionRegs: return 7.0;
    case ComponentId::BusInterface: return 11.0;
    case ComponentId::InstructionFetch: return 10.0;
  }
  return 0.0;
}

double totalArea(const std::vector<SelectedComponent>& parts) {
  double area = 0.0;
  for (const SelectedComponent& p : parts)
    area += componentArea(p.id, p.width) * p.count;
  return area;
}

const char* aluStyleName(AluStyle s) {
  switch (s) {
    case AluStyle::Ripple: return "ripple";
    case AluStyle::CarryLookahead: return "carry-lookahead";
    case AluStyle::CarrySelect: return "carry-select";
  }
  return "?";
}

double aluStyleAreaFactor(AluStyle s) {
  switch (s) {
    case AluStyle::Ripple: return 1.0;
    case AluStyle::CarryLookahead: return 1.25;
    case AluStyle::CarrySelect: return 1.5;
  }
  return 1.0;
}

double aluStyleDelayFactor(AluStyle s) {
  switch (s) {
    case AluStyle::Ripple: return 1.0;
    case AluStyle::CarryLookahead: return 0.7;
    case AluStyle::CarrySelect: return 0.55;
  }
  return 1.0;
}

}  // namespace pscp::hwlib
