// pscp_replay: record, replay, verify and bisect pscp-journal-v1 logs.
//
//   pscp_replay record --out J.json [--instances N] [--threads N]
//                      [--epochs N] [--cycles N] [--checkpoint-interval N]
//                      [--no-soa] [--binary] [--faulty-epoch E]
//       Run the SMD pickup-head fleet workload with the journal armed and
//       write the log. --faulty-epoch deliberately corrupts the journal's
//       inject record for that epoch before writing (bisect demo fodder).
//
//   pscp_replay replay J [--threads N] [--no-soa] [--batch-width N]
//                        [--jit MODE]
//       Re-execute the journal at the given configuration and print the
//       final fleet digest. Checkpoints are verified along the way.
//
//   pscp_replay verify J [--threads N] [--no-soa] [--batch-width N]
//                        [--jit MODE]
//       Like replay, but the exit status is the verdict: 0 iff every
//       recorded checkpoint matched bit-for-bit. --jit always against a
//       journal recorded under the interpreter is the native-tier
//       bit-identity proof.
//
//   pscp_replay bisect J [--threads N] [--no-soa] [--batch-width N]
//                        [--jit MODE]
//       Locate the first divergent epoch of the given configuration
//       against the journal, print both CR states decoded and the causal
//       event spans in the divergence window.
//
//   pscp_replay trace J --instance ID --out T.json
//       Replay with a trace recorder + span tracker attached to one
//       instance and write a Chrome trace whose flow arrows follow each
//       recorded event's span (enqueue -> drain -> dispatch).
//
// All replaying commands take --chart FILE [--actions FILE] to build the
// image from sources instead of the built-in SMD workload — required to
// verify the counterexample journals pscp_check emits. The image is built
// under hwlib::analysisArch(), the same arch pscp_check and pscp_lint use,
// so image content hashes line up across the tools.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "actionlang/parser.hpp"
#include "hwlib/arch_config.hpp"
#include "obs/journal/journal.hpp"
#include "obs/journal/replay.hpp"
#include "obs/journal/spans.hpp"
#include "obs/recorder.hpp"
#include "obs/tee.hpp"
#include "statechart/parser.hpp"
#include "support/diag.hpp"
#include "support/simd.hpp"
#include "tep/jit/tier.hpp"
#include "workloads/smd_fleet.hpp"

using namespace pscp;
using namespace pscp::obs::journal;

namespace {

struct Options {
  std::string command;
  std::string journalPath;
  std::string outPath;
  std::string chartPath;
  std::string actionsPath;
  size_t instances = 64;
  int threads = 1;
  int epochs = 64;
  int cycles = 4;
  int64_t checkpointInterval = 16;
  bool soa = true;
  int batchWidth = 0;
  tep::jit::JitMode jitMode = tep::jit::jitModeFromEnv();
  bool binary = false;
  int64_t traceInstance = -1;
  int64_t faultyEpoch = -1;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s record --out PATH [--instances N] [--threads N] [--epochs N]\n"
      "          [--cycles N] [--checkpoint-interval N] [--no-soa] [--binary]\n"
      "          [--faulty-epoch E]\n"
      "       %s replay JOURNAL [--threads N] [--no-soa] [--batch-width N]\n"
      "          [--jit off|auto|always] [--chart FILE [--actions FILE]]\n"
      "       %s verify JOURNAL [--threads N] [--no-soa] [--batch-width N]\n"
      "          [--jit off|auto|always] [--chart FILE [--actions FILE]]\n"
      "       %s bisect JOURNAL [--threads N] [--no-soa] [--batch-width N]\n"
      "          [--jit off|auto|always] [--chart FILE [--actions FILE]]\n"
      "       %s trace JOURNAL --instance ID --out PATH\n",
      argv0, argv0, argv0, argv0, argv0);
  return 2;
}

bool parseOptions(int argc, char** argv, Options* opt) {
  if (argc < 2) return false;
  opt->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--no-soa") {
      opt->soa = false;
    } else if (arg == "--binary") {
      opt->binary = true;
    } else if (arg == "--out" && (v = next())) {
      opt->outPath = v;
    } else if (arg == "--instances" && (v = next())) {
      opt->instances = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--threads" && (v = next())) {
      opt->threads = std::atoi(v);
    } else if (arg == "--epochs" && (v = next())) {
      opt->epochs = std::atoi(v);
    } else if (arg == "--cycles" && (v = next())) {
      opt->cycles = std::atoi(v);
    } else if (arg == "--checkpoint-interval" && (v = next())) {
      opt->checkpointInterval = std::atoll(v);
    } else if (arg == "--batch-width" && (v = next())) {
      opt->batchWidth = std::atoi(v);
    } else if (arg == "--jit" && (v = next())) {
      if (!tep::jit::parseJitMode(v, &opt->jitMode)) {
        std::fprintf(stderr, "bad --jit mode: %s (off|auto|always)\n", v);
        return false;
      }
    } else if (arg == "--chart" && (v = next())) {
      opt->chartPath = v;
    } else if (arg == "--actions" && (v = next())) {
      opt->actionsPath = v;
    } else if (arg == "--instance" && (v = next())) {
      opt->traceInstance = std::atoll(v);
    } else if (arg == "--faulty-epoch" && (v = next())) {
      opt->faultyEpoch = std::atoll(v);
    } else if (!arg.empty() && arg[0] != '-' && opt->journalPath.empty()) {
      opt->journalPath = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int runRecord(const Options& opt) {
  if (opt.outPath.empty()) {
    std::fprintf(stderr, "record: --out PATH is required\n");
    return 2;
  }
  auto image = workloads::makeSmdFleetImage();
  fleet::FleetConfig config;
  config.workerThreads = opt.threads;
  config.soaBatching = opt.soa;
  config.journal = true;
  config.journalConfig.checkpointInterval = opt.checkpointInterval;
  fleet::Fleet fleet(image, config);

  const workloads::SmdPulseIds ids = workloads::resolveSmdPulseIds(fleet);
  if (!workloads::warmUpSmdFleet(fleet, opt.instances, ids)) {
    std::fprintf(stderr, "record: SMD warm-up failed\n");
    return 1;
  }
  for (int e = 0; e < opt.epochs; ++e) {
    fleet.step(opt.cycles);
    workloads::injectSmdPulses(fleet, ids);
  }
  fleet.step(opt.cycles);  // drain the last pulse pair

  if (opt.faultyEpoch >= 0) {
    // Deliberate damage for the bisect walkthrough: rewrite the first
    // inject delivered at the given epoch into an X_STEPS event — a
    // CR-visible fault (state moves to XEnd2, XFINISH set), so every
    // checkpoint recorded from that epoch on disagrees with any faithful
    // replay of the damaged log.
    Journal damaged(fleet.journal()->config());
    std::string err;
    if (!Journal::parse(fleet.journal()->dumpJson(), &damaged, &err)) {
      std::fprintf(stderr, "record: internal round-trip failed: %s\n",
                   err.c_str());
      return 1;
    }
    const int xSteps = fleet.eventId("X_STEPS");
    bool flipped = false;
    for (Op& op : damaged.mutableOps()) {
      if (op.kind != OpKind::kInject || op.b != opt.faultyEpoch) continue;
      op.a = xSteps;
      flipped = true;
      break;
    }
    if (!flipped) {
      std::fprintf(stderr, "record: no inject at epoch %lld to corrupt\n",
                   static_cast<long long>(opt.faultyEpoch));
      return 1;
    }
    if (!damaged.writeFile(opt.outPath, opt.binary, &err)) {
      std::fprintf(stderr, "record: %s\n", err.c_str());
      return 1;
    }
    std::printf("recorded %zu instances x %d epochs to %s "
                "(CORRUPTED at epoch %lld)\n",
                opt.instances, opt.epochs, opt.outPath.c_str(),
                static_cast<long long>(opt.faultyEpoch));
    return 0;
  }

  std::string err;
  if (!fleet.writeJournal(opt.outPath, opt.binary, &err)) {
    std::fprintf(stderr, "record: %s\n", err.c_str());
    return 1;
  }
  std::printf(
      "recorded %zu instances x %d epochs (%d cycles each) to %s\n"
      "  ops %zu, spans %llu, checkpoints %zu, simd %s, workers %d, soa %s\n",
      opt.instances, opt.epochs, opt.cycles, opt.outPath.c_str(),
      fleet.journal()->ops().size(),
      static_cast<unsigned long long>(fleet.journal()->spanCount()),
      fleet.journal()->checkpointCount(), fleet.journal()->simdLevel().c_str(),
      fleet.journal()->recordedWorkers(),
      fleet.journal()->recordedSoa() ? "on" : "off");
  return 0;
}

bool readFileText(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

/// Build the replay image: the built-in SMD workload by default, or the
/// given chart/action sources compiled under the shared analysis arch.
/// Returns null (with a message on stderr) on a read or compile failure.
std::shared_ptr<const machine::ChartImage> loadImage(const Options& opt) {
  if (opt.chartPath.empty()) return workloads::makeSmdFleetImage();
  // Same bundle idiom as makeSmdFleetImage: the image references the
  // parsed chart and program, so the control block must own all three.
  struct Bundle {
    statechart::Chart chart;
    actionlang::Program actions;
    std::unique_ptr<const machine::ChartImage> image;
    Bundle(statechart::Chart c, actionlang::Program a)
        : chart(std::move(c)), actions(std::move(a)) {}
  };
  std::string chartText;
  if (!readFileText(opt.chartPath, &chartText)) {
    std::fprintf(stderr, "%s: cannot read '%s'\n", opt.command.c_str(),
                 opt.chartPath.c_str());
    return nullptr;
  }
  std::string actionText;
  if (!opt.actionsPath.empty() && !readFileText(opt.actionsPath, &actionText)) {
    std::fprintf(stderr, "%s: cannot read '%s'\n", opt.command.c_str(),
                 opt.actionsPath.c_str());
    return nullptr;
  }
  try {
    auto bundle = std::make_shared<Bundle>(
        statechart::parseChart(chartText, opt.chartPath),
        actionlang::parseActionSource(
            actionText, opt.actionsPath.empty() ? "<actions>" : opt.actionsPath));
    bundle->image = std::make_unique<const machine::ChartImage>(
        bundle->chart, bundle->actions, hwlib::analysisArch());
    return {bundle, bundle->image.get()};
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: %s\n", opt.command.c_str(), e.what());
    return nullptr;
  }
}

bool loadJournal(const Options& opt, Journal* journal) {
  if (opt.journalPath.empty()) {
    std::fprintf(stderr, "%s: a JOURNAL path is required\n",
                 opt.command.c_str());
    return false;
  }
  std::string err;
  if (!Journal::readFile(opt.journalPath, journal, &err)) {
    std::fprintf(stderr, "%s: %s\n", opt.command.c_str(), err.c_str());
    return false;
  }
  return true;
}

ReplayOptions targetOptions(const Options& opt) {
  ReplayOptions options;
  options.workerThreads = opt.threads;
  options.soaBatching = opt.soa;
  options.batchWidth = opt.batchWidth;
  options.jitMode = opt.jitMode;
  return options;
}

int runReplayOrVerify(const Options& opt) {
  Journal journal;
  if (!loadJournal(opt, &journal)) return 1;
  auto image = loadImage(opt);
  if (image == nullptr) return 1;
  Replayer replayer(&journal, image);
  const ReplayResult result = replayer.run(targetOptions(opt));
  if (!result.ok) {
    std::fprintf(stderr, "%s: %s\n", opt.command.c_str(),
                 result.error.c_str());
    return 1;
  }
  std::printf("replayed %lld epochs, %lld checkpoints checked, final epoch "
              "%lld, final digest 0x%016llx\n",
              static_cast<long long>(result.epochsReplayed),
              static_cast<long long>(result.checkpointsChecked),
              static_cast<long long>(result.finalEpoch),
              static_cast<unsigned long long>(result.finalDigest));
  if (result.verified) {
    // The replaying process's dispatch level, not the recorded one — a
    // scalar-pinned verify of an avx2 recording is exactly the cross-SIMD
    // bit-identity proof, so say which kernels actually ran.
    std::printf("verdict: bit-identical (threads %d, soa %s, jit %s, simd %s "
                "vs recorded %s)\n",
                opt.threads, opt.soa ? "on" : "off",
                tep::jit::jitModeName(opt.jitMode),
                simdLevelName(activeSimdLevel()), journal.simdLevel().c_str());
    return 0;
  }
  const CheckpointMismatch& m = result.firstMismatch;
  std::printf("verdict: DIVERGED at checkpoint epoch %lld "
              "(recorded 0x%016llx, replayed 0x%016llx, %zu instances)\n",
              static_cast<long long>(m.epoch),
              static_cast<unsigned long long>(m.recordedDigest),
              static_cast<unsigned long long>(m.replayedDigest),
              m.divergingInstances.size());
  for (size_t i = 0; i < m.recorded.size() && i < 8; ++i) {
    std::printf("  instance %lld recorded %s\n",
                static_cast<long long>(m.recorded[i].instance),
                m.recorded[i].words.empty()
                    ? "(digest only)"
                    : describeCrWords(*image, m.recorded[i].words).c_str());
    std::printf("  instance %lld replayed %s\n",
                static_cast<long long>(m.replayed[i].instance),
                describeCrWords(*image, m.replayed[i].words).c_str());
  }
  std::printf("run `pscp_replay bisect %s` to pinpoint the first divergent "
              "epoch\n", opt.journalPath.c_str());
  return opt.command == "verify" ? 1 : 0;
}

int runBisect(const Options& opt) {
  Journal journal;
  if (!loadJournal(opt, &journal)) return 1;
  auto image = loadImage(opt);
  if (image == nullptr) return 1;
  const BisectResult result =
      bisectDivergence(journal, image, targetOptions(opt));
  std::fputs(formatBisectReport(result, *image).c_str(), stdout);
  return result.ok ? 0 : 1;
}

int runTrace(const Options& opt) {
  Journal journal;
  if (!loadJournal(opt, &journal)) return 1;
  if (opt.traceInstance < 0 || opt.outPath.empty()) {
    std::fprintf(stderr, "trace: --instance ID and --out PATH are required\n");
    return 2;
  }
  auto image = loadImage(opt);
  if (image == nullptr) return 1;
  obs::TraceRecorder recorder;
  SpanTracker tracker;
  obs::TeeSink tee{&recorder, &tracker};

  Replayer replayer(&journal, image);
  ReplayOptions options = targetOptions(opt);
  options.traceSink = &tee;
  options.spanTracker = &tracker;
  options.traceInstance = opt.traceInstance;
  const ReplayResult result = replayer.run(options);
  if (!result.ok) {
    std::fprintf(stderr, "trace: %s\n", result.error.c_str());
    return 1;
  }
  const std::string json = chromeTraceJsonWithSpans(recorder, tracker);
  std::FILE* f = std::fopen(opt.outPath.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open '%s' for writing\n",
                 opt.outPath.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  size_t spansLinked = 0;
  for (const SpanTracker::Span& s : tracker.spans())
    if (s.drainTime >= 0 && !s.dispatches.empty()) ++spansLinked;
  std::printf("traced instance %lld over %lld epochs: %zu spans recorded, "
              "%zu linked to dispatches -> %s\n",
              static_cast<long long>(opt.traceInstance),
              static_cast<long long>(result.epochsReplayed),
              tracker.spans().size(), spansLinked, opt.outPath.c_str());
  return result.verified ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseOptions(argc, argv, &opt)) return usage(argv[0]);
  if (opt.command == "record") return runRecord(opt);
  if (opt.command == "replay" || opt.command == "verify")
    return runReplayOrVerify(opt);
  if (opt.command == "bisect") return runBisect(opt);
  if (opt.command == "trace") return runTrace(opt);
  return usage(argv[0]);
}
