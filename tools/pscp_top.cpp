// pscp_top: live health dashboard for a running fleet — `top` for
// statechart populations. Spins up a telemetry-armed SMD fleet (the same
// steady-state duty cycle the benches run), steps it on a driver thread,
// and renders per-shard health from lock-free snapshots on the main
// thread: epoch latency (last/EWMA/max + p50/p99 from the per-shard
// histogram), machine cycles, queue high-water, steals, drops, and any
// anomalies the stall/imbalance detector raises.
//
//   pscp_top                         # live dashboard until Ctrl-C / duration
//   pscp_top --json                  # one pscp-telemetry-v1 snapshot, stdout
//   pscp_top --induce-stall 1        # fault-inject shard 1 and watch the
//                                    # detector fire (auto flight dump)
//   pscp_top --flight-dump F.json    # dump the flight recorder on exit
//   pscp_top --export-trace T.json   # lower the dump to a Chrome trace
//
// The dashboard reads only Fleet::healthSnapshot() and the flight rings —
// both safe mid-epoch — so it observes a stalled epoch *while* it stalls,
// which is the whole point of a live plane over post-mortem metrics.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "support/diag.hpp"
#include "support/text.hpp"
#include "workloads/smd_fleet.hpp"

using namespace pscp;

namespace {

struct Options {
  size_t instances = 256;
  int threads = 2;
  int cyclesPerEpoch = 8;
  int refreshMs = 500;
  double durationSec = 0.0;  ///< 0 = run until --epochs (or forever)
  int64_t epochs = 0;        ///< 0 = unlimited
  bool json = false;
  std::string flightDumpPath;
  std::string exportTracePath;
  int induceStallShard = -1;
  int64_t stallMicros = 20'000;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--instances N] [--threads N] [--cycles N] [--refresh-ms N]\n"
      "          [--duration SEC] [--epochs N] [--json]\n"
      "          [--flight-dump PATH] [--export-trace PATH]\n"
      "          [--induce-stall SHARD [--stall-micros N]]\n",
      argv0);
  return 2;
}

bool parseOptions(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--json") {
      opt->json = true;
    } else if (arg == "--instances" && (v = next())) {
      opt->instances = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--threads" && (v = next())) {
      opt->threads = std::atoi(v);
    } else if (arg == "--cycles" && (v = next())) {
      opt->cyclesPerEpoch = std::atoi(v);
    } else if (arg == "--refresh-ms" && (v = next())) {
      opt->refreshMs = std::atoi(v);
    } else if (arg == "--duration" && (v = next())) {
      opt->durationSec = std::atof(v);
    } else if (arg == "--epochs" && (v = next())) {
      opt->epochs = std::atoll(v);
    } else if (arg == "--flight-dump" && (v = next())) {
      opt->flightDumpPath = v;
    } else if (arg == "--export-trace" && (v = next())) {
      opt->exportTracePath = v;
    } else if (arg == "--induce-stall" && (v = next())) {
      opt->induceStallShard = std::atoi(v);
    } else if (arg == "--stall-micros" && (v = next())) {
      opt->stallMicros = std::atoll(v);
    } else {
      return false;
    }
  }
  return opt->instances > 0 && opt->threads > 0 && opt->cyclesPerEpoch > 0;
}

std::string nanosText(int64_t ns) {
  if (ns >= 1'000'000'000) return strfmt("%.2fs", static_cast<double>(ns) / 1e9);
  if (ns >= 1'000'000) return strfmt("%.1fms", static_cast<double>(ns) / 1e6);
  if (ns >= 1'000) return strfmt("%.1fus", static_cast<double>(ns) / 1e3);
  return strfmt("%lldns", static_cast<long long>(ns));
}

/// Quantile over a shard's epoch-latency histogram via Histogram::fromCounts.
double shardQuantile(const obs::ShardHealth& s, double q) {
  if (s.epochs == 0 || s.epochNanosCounts.empty()) return 0.0;
  const obs::Histogram h = obs::Histogram::fromCounts(
      obs::epochNanosBounds(), s.epochNanosCounts, s.sumEpochNanos,
      s.minEpochNanos, s.maxEpochNanos);
  return h.quantile(q);
}

std::string renderDashboard(const obs::FleetHealth& health,
                            const std::vector<obs::HealthAnomaly>& anomalies,
                            double elapsedSec, pscp::tep::jit::JitMode jitMode,
                            const pscp::tep::jit::TierResidency& tier) {
  std::string out;
  out += strfmt(
      "pscp_top — %lld instances, %d workers, epoch %lld, %.1fs elapsed\n",
      static_cast<long long>(health.liveInstances), health.workerThreads,
      static_cast<long long>(health.epochs), elapsedSec);
  out += strfmt(
      "fleet: %lld machine cycles, %lld drops, %lld steal chunks\n",
      static_cast<long long>(health.totalMachineCycles()),
      static_cast<long long>(health.totalEventsDropped()),
      static_cast<long long>(health.totalStealChunks()));
  out += strfmt(
      "tier:  jit=%s — %d native / %d interp / %d rejected routines, "
      "%lld native runs, %lld interp runs, compile %s\n\n",
      pscp::tep::jit::jitModeName(jitMode), tier.nativeRoutines,
      tier.interpretedRoutines, tier.rejectedRoutines,
      static_cast<long long>(tier.nativeRuns),
      static_cast<long long>(tier.interpRuns),
      nanosText(tier.compileMicros * 1000).c_str());

  std::vector<std::vector<std::string>> rows;
  for (const obs::ShardHealth& s : health.shards) {
    rows.push_back(
        {strfmt("%d", s.shard), strfmt("%lld", static_cast<long long>(s.epochs)),
         nanosText(s.lastEpochNanos), nanosText(s.ewmaEpochNanos),
         nanosText(static_cast<int64_t>(shardQuantile(s, 0.5))),
         nanosText(static_cast<int64_t>(shardQuantile(s, 0.99))),
         nanosText(s.maxEpochNanos),
         s.inFlightNanos > 0 ? nanosText(s.inFlightNanos) : "-",
         strfmt("%lld", static_cast<long long>(s.machineCycles)),
         strfmt("%lld", static_cast<long long>(s.queueDepthHwm)),
         strfmt("%lld", static_cast<long long>(s.stealChunks)),
         strfmt("%lld", static_cast<long long>(s.eventsDropped))});
  }
  out += renderTable({"shard", "epochs", "last", "ewma", "p50", "p99", "max",
                      "inflight", "mcycles", "q_hwm", "steals", "drops"},
                     rows);
  out += "\n";
  if (anomalies.empty()) {
    out += "health: OK\n";
  } else {
    for (const obs::HealthAnomaly& a : anomalies)
      out += strfmt("ANOMALY [%s] %s\n", obs::anomalyKindName(a.kind),
                    a.detail.c_str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseOptions(argc, argv, &opt)) return usage(argv[0]);
  // One-shot JSON wants a bounded run; default it when the user gave no
  // other stop condition.
  if (opt.json && opt.epochs == 0 && opt.durationSec == 0.0) opt.epochs = 30;

  fleet::FleetConfig config;
  config.workerThreads = opt.threads;
  config.telemetry = true;
  config.debugStallShard = opt.induceStallShard;
  if (opt.induceStallShard >= 0) config.debugStallMicros = opt.stallMicros;
  fleet::Fleet fleet(workloads::makeSmdFleetImage(), config);
  const workloads::SmdPulseIds pulses = workloads::resolveSmdPulseIds(fleet);
  if (!workloads::warmUpSmdFleet(fleet, opt.instances, pulses)) {
    std::fprintf(stderr, "error: SMD instance(s) did not reach Moving\n");
    return 1;
  }

  // Driver thread owns the fleet control surface; the main thread only
  // takes lock-free snapshots.
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    int64_t done = 0;
    while (!stop.load(std::memory_order_relaxed) &&
           (opt.epochs == 0 || done < opt.epochs)) {
      workloads::injectSmdPulses(fleet, pulses);
      fleet.step(opt.cyclesPerEpoch);
      ++done;
    }
    stop.store(true, std::memory_order_relaxed);
  });

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  int exitCode = 0;
  bool stallSeen = false;
  if (opt.json) {
    // Let the run finish (or the duration lapse), then emit one snapshot.
    while (!stop.load(std::memory_order_relaxed) &&
           (opt.durationSec == 0.0 || elapsed() < opt.durationSec))
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stop.store(true, std::memory_order_relaxed);
    driver.join();
    const obs::FleetHealth health = fleet.healthSnapshot();
    const std::vector<obs::HealthAnomaly> anomalies =
        obs::detectAnomalies(health);
    const JsonValue doc = obs::telemetrySnapshotJson(health, anomalies);
    std::string error;
    if (!obs::validateTelemetryV1(doc, &error)) {
      std::fprintf(stderr, "error: emitted snapshot failed validation: %s\n",
                   error.c_str());
      exitCode = 1;
    } else {
      std::printf("%s\n", doc.dump(1).c_str());
    }
    for (const obs::HealthAnomaly& a : anomalies)
      stallSeen = stallSeen || a.kind == obs::HealthAnomaly::Kind::kStall;
  } else {
    for (;;) {
      const bool done = stop.load(std::memory_order_relaxed) ||
                        (opt.durationSec > 0.0 && elapsed() >= opt.durationSec);
      const obs::FleetHealth health = fleet.healthSnapshot();
      const std::vector<obs::HealthAnomaly> anomalies =
          obs::detectAnomalies(health);
      for (const obs::HealthAnomaly& a : anomalies)
        stallSeen = stallSeen || a.kind == obs::HealthAnomaly::Kind::kStall;
      // ANSI home+clear keeps the table in place; fall through cleanly when
      // stdout is a pipe.
      std::printf("\x1b[H\x1b[2J%s",
                  renderDashboard(health, anomalies, elapsed(), config.jitMode,
                                  fleet.tierResidency())
                      .c_str());
      std::fflush(stdout);
      if (done) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.refreshMs));
    }
    stop.store(true, std::memory_order_relaxed);
    driver.join();
  }

  // A detected stall always leaves a post-mortem behind, even without an
  // explicit --flight-dump.
  std::string dumpPath = opt.flightDumpPath;
  if (dumpPath.empty() && stallSeen) dumpPath = "FLIGHT_pscp_top_stall.json";
  if (!dumpPath.empty()) {
    std::string error;
    if (fleet.writeFlightDump(dumpPath, &error)) {
      std::fprintf(stderr, "flight dump written to %s\n", dumpPath.c_str());
    } else {
      std::fprintf(stderr, "error: flight dump failed: %s\n", error.c_str());
      exitCode = 1;
    }
  }
  if (!opt.exportTracePath.empty()) {
    const std::string trace = obs::FlightRecorder::chromeTraceJson(
        fleet.flightRecorder()->snapshot());
    std::FILE* f = std::fopen(opt.exportTracePath.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(trace.data(), 1, trace.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "chrome trace written to %s\n",
                   opt.exportTracePath.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.exportTracePath.c_str());
      exitCode = 1;
    }
  }
  return exitCode;
}
