// pscp_lint — chart-level static analyzer front-end.
//
// Runs the src/analysis passes (transition conflicts, TEP write races,
// reachability/liveness, action-language and microcode lints) over a chart
// and its action routines, prints a compiler-style report, and gates CI:
//
//   pscp_lint --chart FILE [--actions FILE] [options]
//   pscp_lint --builtin smd [options]
//
//   --chart FILE         statechart source to analyze
//   --actions FILE       action-language source (optional)
//   --builtin smd        analyze the built-in SMD pickup-head workload
//   --json FILE          write the pscp-lint-v1 JSON report ('-' = stdout)
//   --werror             exit nonzero on warnings, not just errors
//   --no-conflicts / --no-races / --no-reach / --no-lints
//                        disable individual passes
//   --max-configs N      reachability exploration bound (default 65536)
//   --check SPEC         run the bounded model checker with the given spec
//                        file and merge its MC0xx findings into the report
//   --runtime-check [N]  also run the machine for N fuzzed configuration
//                        cycles (default 2000) and fail if an observed
//                        same-cycle port collision was not flagged WR001
//   --quiet              suppress the text report (exit code / JSON only)
//
// Exit codes: 0 clean, 1 gated findings or cross-check failure, 2 usage /
// parse error.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "actionlang/parser.hpp"
#include "analysis/analyzer.hpp"
#include "analysis/check/checker.hpp"
#include "analysis/check/spec.hpp"
#include "hwlib/arch_config.hpp"
#include "obs/journal/journal.hpp"
#include "pscp/machine.hpp"
#include "statechart/parser.hpp"
#include "support/diag.hpp"
#include "workloads/smd.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--chart FILE [--actions FILE] | --builtin smd)\n"
               "          [--json FILE] [--werror] [--quiet] [--check SPEC]\n"
               "          [--no-conflicts] [--no-races] [--no-reach] [--no-lints]\n"
               "          [--max-configs N] [--runtime-check [CYCLES]]\n",
               argv0);
  return 2;
}

bool readFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

/// Deterministic event fuzz for the runtime cross-check: drive the machine
/// with pseudo-random subsets of its external events and compare observed
/// same-cycle port collisions against the static WR001 verdict.
int runtimeCrossCheck(const pscp::statechart::Chart& chart,
                      const pscp::actionlang::Program& actions, int cycles,
                      const pscp::analysis::AnalysisResult& result, bool quiet) {
  using pscp::machine::PortWrite;

  std::vector<std::string> events;
  for (const auto& [name, decl] : chart.events())
    if (decl.external) events.push_back(name);
  if (events.empty())
    for (const auto& [name, decl] : chart.events()) events.push_back(name);

  pscp::machine::PscpMachine machine(chart, actions, pscp::hwlib::analysisArch());
  uint64_t lcg = 0x243F6A8885A308D3ull;  // fixed seed: runs are reproducible
  for (int i = 0; i < cycles; ++i) {
    std::set<std::string> fire;
    for (const std::string& e : events) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      if ((lcg >> 33) & 1) fire.insert(e);
    }
    machine.configurationCycle(fire);
  }

  // Group writes by (configuration cycle, port); a collision is two writes
  // of different values from different transitions in one cycle.
  std::map<std::pair<int64_t, int>, std::vector<const PortWrite*>> byCyclePort;
  for (const PortWrite& w : machine.portWrites())
    byCyclePort[{w.configCycle, w.port}].push_back(&w);

  std::set<std::string> staticallyFlagged;
  for (const pscp::analysis::Finding& f : result.findings)
    if (f.code == pscp::analysis::kCodeWriteWrite && !f.resource.empty())
      staticallyFlagged.insert(f.resource);

  // Port address -> chart name for reporting.
  std::map<int, std::string> portName;
  for (const auto& [name, port] : chart.ports()) portName[port.address] = name;

  int observed = 0;
  int unflagged = 0;
  for (const auto& [key, writes] : byCyclePort) {
    bool collision = false;
    for (size_t i = 0; i < writes.size() && !collision; ++i)
      for (size_t j = i + 1; j < writes.size() && !collision; ++j)
        if (writes[i]->transition != writes[j]->transition &&
            writes[i]->value != writes[j]->value)
          collision = true;
    if (!collision) continue;
    ++observed;
    auto it = portName.find(key.second);
    const std::string name = it != portName.end()
                                 ? it->second
                                 : "#" + std::to_string(key.second);
    if (staticallyFlagged.count(name) == 0) {
      ++unflagged;
      std::fprintf(stderr,
                   "pscp_lint: runtime cross-check FAILED: observed a "
                   "same-cycle collision on port '%s' (configuration cycle "
                   "%lld) that the race pass did not flag\n",
                   name.c_str(), static_cast<long long>(key.first));
    }
  }
  if (!quiet)
    std::printf(
        "runtime cross-check: %d fuzzed cycles, %d observed collision(s), "
        "%d unflagged\n",
        cycles, observed, unflagged);
  return unflagged == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string chartFile;
  std::string actionsFile;
  std::string builtin;
  std::string jsonFile;
  std::string specFile;
  bool werror = false;
  bool quiet = false;
  bool runtimeCheck = false;
  int runtimeCycles = 2000;
  pscp::analysis::AnalyzerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires an argument\n", argv[0], what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--chart") chartFile = value("--chart");
    else if (arg == "--actions") actionsFile = value("--actions");
    else if (arg == "--builtin") builtin = value("--builtin");
    else if (arg == "--json") jsonFile = value("--json");
    else if (arg == "--check") specFile = value("--check");
    else if (arg == "--werror") werror = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--no-conflicts") options.conflicts = false;
    else if (arg == "--no-races") options.races = false;
    else if (arg == "--no-reach") options.reachability = false;
    else if (arg == "--no-lints") options.lints = false;
    else if (arg == "--max-configs") options.maxConfigurations = std::atoi(value("--max-configs"));
    else if (arg == "--runtime-check") {
      runtimeCheck = true;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0])))
        runtimeCycles = std::atoi(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  std::string chartText;
  std::string actionText;
  std::string chartName = chartFile;
  if (builtin == "smd") {
    chartText = pscp::workloads::smdChartText();
    actionText = pscp::workloads::smdActionText();
    chartName = "<builtin:smd>";
  } else if (!builtin.empty()) {
    std::fprintf(stderr, "%s: unknown builtin '%s' (have: smd)\n", argv[0],
                 builtin.c_str());
    return 2;
  } else if (!chartFile.empty()) {
    if (!readFile(chartFile, &chartText)) {
      std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], chartFile.c_str());
      return 2;
    }
    if (!actionsFile.empty() && !readFile(actionsFile, &actionText)) {
      std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], actionsFile.c_str());
      return 2;
    }
  } else {
    return usage(argv[0]);
  }

  try {
    const pscp::statechart::Chart chart =
        pscp::statechart::parseChart(chartText, chartName);
    pscp::actionlang::Program actions = pscp::actionlang::parseActionSource(
        actionText, actionsFile.empty() ? "<actions>" : actionsFile);

    pscp::analysis::Analyzer analyzer(chart, actions, options);

    // Compile for the microcode-level checks; charts whose actions do not
    // compile under the analysis arch still get the AST-level passes.
    std::shared_ptr<pscp::machine::ChartImage> image;
    try {
      image = std::make_shared<pscp::machine::ChartImage>(
          chart, actions, pscp::hwlib::analysisArch());
      analyzer.attachCompiled(image->app());
    } catch (const pscp::Error& e) {
      if (!quiet)
        std::fprintf(stderr,
                     "pscp_lint: note: compile skipped (%s); microcode "
                     "checks disabled\n",
                     e.what());
    }

    pscp::analysis::AnalysisResult result = analyzer.run();
    if (image != nullptr)
      result.imageHash = pscp::obs::journal::imageContentHash(*image);

    if (!specFile.empty()) {
      std::string specText;
      if (!readFile(specFile, &specText)) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], specFile.c_str());
        return 2;
      }
      pscp::analysis::check::SpecFile spec =
          pscp::analysis::check::parseSpec(specText, specFile);
      pscp::analysis::check::bindSpec(&spec, chart);
      pscp::analysis::check::CheckOptions checkOptions;
      if (spec.boundStates) checkOptions.maxStates = *spec.boundStates;
      if (spec.boundDepth) checkOptions.maxDepth = *spec.boundDepth;
      const pscp::analysis::check::CheckResult check =
          pscp::analysis::check::runBoundedCheck(chart, actions, spec, image,
                                                 checkOptions);
      if (!quiet) std::fputs(check.renderText().c_str(), stdout);
      for (const pscp::analysis::Finding& f : check.findings)
        result.findings.push_back(f);
    }

    if (!quiet) std::fputs(result.renderText().c_str(), stdout);
    if (!jsonFile.empty()) {
      const std::string doc = result.renderJson();
      if (jsonFile == "-") {
        std::fputs(doc.c_str(), stdout);
      } else {
        std::FILE* f = std::fopen(jsonFile.c_str(), "wb");
        if (f == nullptr) {
          std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], jsonFile.c_str());
          return 2;
        }
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
      }
    }

    int exitCode = 0;
    if (result.errorCount() > 0) exitCode = 1;
    if (werror && result.warningCount() > 0) exitCode = 1;
    if (runtimeCheck && image != nullptr)
      if (runtimeCrossCheck(chart, actions, runtimeCycles, result, quiet) != 0)
        exitCode = 1;
    return exitCode;
  } catch (const pscp::Error& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
