// bench_compare — bench-regression gate over two JSON metric dumps.
//
//   bench_compare BASELINE.json CURRENT.json [options]
//
//   --tol F             global relative tolerance (default 0.25)
//   --tol-metric S=F    tolerance F for paths containing substring S
//                       (repeatable; longest matching substring wins)
//   --ignore S          never gate on paths containing substring S
//                       (repeatable; still listed in the table)
//   --quiet             print only the verdict line
//
// Both documents are flattened to numeric leaves and compared under the
// direction heuristic in obs/bench_compare.hpp. Exit status: 0 when no
// gated metric regressed, 1 on regression, 2 on usage or parse errors —
// so `bench_compare baseline.json BENCH_x.json || exit 1` is a CI gate.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/bench_compare.hpp"
#include "support/json.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--tol F] "
               "[--tol-metric SUBSTR=F] [--ignore SUBSTR] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pscp;

  std::string baselinePath;
  std::string currentPath;
  obs::BenchCompareOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool hasValue = i + 1 < argc;
    if (arg == "--tol" && hasValue) {
      options.tolerance = std::atof(argv[++i]);
    } else if (arg == "--tol-metric" && hasValue) {
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return usage(argv[0]);
      options.perMetricTolerance.emplace_back(
          spec.substr(0, eq), std::atof(spec.c_str() + eq + 1));
    } else if (arg == "--ignore" && hasValue) {
      options.ignore.push_back(argv[++i]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (baselinePath.empty()) {
      baselinePath = arg;
    } else if (currentPath.empty()) {
      currentPath = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baselinePath.empty() || currentPath.empty()) return usage(argv[0]);

  JsonValue baseline;
  JsonValue current;
  std::string error;
  if (!parseJsonFile(baselinePath, &baseline, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", baselinePath.c_str(),
                 error.c_str());
    return 2;
  }
  if (!parseJsonFile(currentPath, &current, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", currentPath.c_str(),
                 error.c_str());
    return 2;
  }

  const obs::BenchCompareResult result =
      obs::compareBenchJson(baseline, current, options);
  const std::string summary = result.summaryText();
  if (quiet) {
    const size_t lastLine = summary.rfind('\n', summary.size() - 2);
    std::fputs(summary.c_str() + (lastLine == std::string::npos ? 0 : lastLine + 1),
               stdout);
  } else {
    std::fputs(summary.c_str(), stdout);
  }
  return result.regressions == 0 ? 0 : 1;
}
