// pscp_prof — cycle-attribution profiler front-end.
//
// Runs the SMD pickup-head controller (paper Sec. 5) on a PSCP machine
// with the Profiler sink attached and prints the perf-style report:
// where every simulated cycle went (exclusive categories), which TEP
// bounded each configuration cycle, latency percentiles, and the top
// transitions/state regions by cost.
//
//   pscp_prof [--teps N] [--repeat R] [--top N] [--jit MODE] [--json FILE]
//             [--quiet]
//
//   --teps N     number of TEPs (default 2)
//   --repeat R   repeat the move-command sequence R times (default 1)
//   --top N      rows in the top-transition/state tables (default 10)
//   --jit MODE   execution tier: off|auto|always (default: PSCP_JIT env)
//   --json FILE  also write the machine-readable pscp-profile-v1 report
//   --quiet      suppress the text report (self-check and JSON only)
//
// The report ends with the routine-hotness ranking (the profiler feed the
// tier-selection policy keys on) and the native-tier residency: how many
// routines ran compiled vs interpreted and what compilation cost.
//
// Before reporting, the tool re-validates the profiler's exactness
// invariant against the machine's own CycleStats: every configuration
// cycle's category sum must equal its reported cycle count, and the
// grand total must match the sum over CycleStats. Exit is nonzero on
// any mismatch, so CI runs double as an attribution audit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "actionlang/parser.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "pscp/machine.hpp"
#include "statechart/parser.hpp"
#include "workloads/smd.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--teps N] [--repeat R] [--top N] [--jit MODE] "
               "[--json FILE] [--quiet]\n",
               argv0);
  return 2;
}

/// The canonical SMD walk (same sequence as examples/trace_demo): one
/// 3-axis move command, prepare/begin/start, pulses until completion.
int64_t driveMove(pscp::machine::PscpMachine& m) {
  int64_t cycles = 0;
  for (uint32_t byte : {0x01u, 6u, 4u, 2u}) {
    m.setInputPort("Buffer", byte);
    cycles += m.configurationCycle({"DATA_VALID"}).cycles;
  }
  cycles += m.configurationCycle({}).cycles;  // PrepareMove
  cycles += m.configurationCycle({}).cycles;  // BeginMove
  cycles += m.configurationCycle({}).cycles;  // StartMotors
  cycles += m.configurationCycle({"X_PULSE", "Y_PULSE", "PHI_PULSE"}).cycles;
  cycles += m.configurationCycle({"X_PULSE", "Y_PULSE"}).cycles;
  cycles += m.configurationCycle({"X_PULSE"}).cycles;
  cycles += m.configurationCycle({"X_STEPS", "Y_STEPS", "PHI_STEPS"}).cycles;
  cycles += m.configurationCycle({}).cycles;  // FinishMove
  for (const auto& s : m.runToQuiescence({})) cycles += s.cycles;
  return cycles;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pscp;

  int teps = 2;
  int repeat = 1;
  int top = 10;
  tep::jit::JitMode jitMode = tep::jit::jitModeFromEnv();
  std::string jsonPath;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool hasValue = i + 1 < argc;
    if (arg == "--teps" && hasValue) {
      teps = std::atoi(argv[++i]);
    } else if (arg == "--repeat" && hasValue) {
      repeat = std::atoi(argv[++i]);
    } else if (arg == "--top" && hasValue) {
      top = std::atoi(argv[++i]);
    } else if (arg == "--jit" && hasValue) {
      if (!tep::jit::parseJitMode(argv[++i], &jitMode)) return usage(argv[0]);
    } else if (arg == "--json" && hasValue) {
      jsonPath = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (teps < 1 || repeat < 1) return usage(argv[0]);

  auto chart = statechart::parseChart(workloads::smdChartText());
  auto actions = actionlang::parseActionSource(workloads::smdActionText());
  hwlib::ArchConfig arch;
  arch.dataWidth = 16;
  arch.hasMulDiv = true;
  arch.numTeps = teps;
  arch.registerFileSize = 12;
  machine::PscpMachine m(chart, actions, arch);
  m.setJitMode(jitMode);

  obs::Profiler profiler;
  m.setObsOptions({&profiler});

  int64_t statsCycles = m.configurationCycle({"POWER"}).cycles;
  for (int r = 0; r < repeat; ++r) statsCycles += driveMove(m);

  // Attribution audit: the profiler must account for exactly 100% of the
  // cycles the machine itself reported — per cycle and in total.
  int64_t attributed = 0;
  for (const obs::CycleAttribution& a : profiler.cycles()) {
    int64_t sum = 0;
    for (const int64_t c : a.cat) sum += c;
    if (sum != a.total) {
      std::fprintf(stderr,
                   "pscp_prof: attribution mismatch at configuration cycle "
                   "%lld: categories sum to %lld, machine reported %lld\n",
                   static_cast<long long>(a.index), static_cast<long long>(sum),
                   static_cast<long long>(a.total));
      return 1;
    }
    attributed += sum;
  }
  if (attributed != statsCycles || profiler.totalCycles() != statsCycles) {
    std::fprintf(stderr,
                 "pscp_prof: attribution total %lld != CycleStats total %lld\n",
                 static_cast<long long>(attributed),
                 static_cast<long long>(statsCycles));
    return 1;
  }

  // The profiled pass itself always runs interpreted: micro-level
  // observability (per-instruction retire, bus stalls) only exists in the
  // microcode tier, so an attached sink pins the machine there. The
  // hotness ranking then seeds the compile cache — profiler-driven AOT,
  // the offline half of the tier policy — which is what the residency
  // report below describes.
  if (jitMode != tep::jit::JitMode::kOff && tep::jit::jitBackendAvailable()) {
    for (const obs::RoutineHotness& h : profiler.routineHotness()) {
      std::string reason;
      m.image().tierCache().precompile(h.transition,
                                       m.image().routineEntry(h.transition),
                                       &reason);
    }
  }

  if (!quiet) {
    obs::ReportOptions options;
    options.topN = top;
    std::fputs(obs::profileText(profiler, options).c_str(), stdout);

    // Routine hotness: the ranking the tier-selection policy keys on.
    std::printf("\nhot routines (tier-selection feed)\n");
    std::printf("  %-32s %10s %12s %8s\n", "routine", "calls", "cycles", "tier");
    const auto& names = profiler.meta().transitionNames;
    int rows = 0;
    for (const obs::RoutineHotness& h : profiler.routineHotness()) {
      if (rows++ >= top) break;
      const char* name = static_cast<size_t>(h.transition) < names.size()
                             ? names[static_cast<size_t>(h.transition)].c_str()
                             : "?";
      const auto state = m.image().tierCache().stateOf(h.transition);
      std::printf("  %-32s %10lld %12lld %8s\n", name,
                  static_cast<long long>(h.calls),
                  static_cast<long long>(h.cycles),
                  tep::jit::routineStateName(state));
    }

    const tep::jit::TierResidency tier = m.tierResidency();
    std::printf(
        "\ntier residency after profile-seeded AOT (jit=%s): %d native, "
        "%d rejected of %lld profiled routines; compile %.2f ms\n",
        tep::jit::jitModeName(jitMode), tier.nativeRoutines,
        tier.rejectedRoutines,
        static_cast<long long>(profiler.routineHotness().size()),
        static_cast<double>(tier.compileMicros) / 1000.0);

    std::printf("\nattribution audit: %lld/%lld cycles accounted (100.0%%)\n",
                static_cast<long long>(attributed),
                static_cast<long long>(statsCycles));
  }
  if (!jsonPath.empty()) {
    obs::writeProfileJson(profiler, jsonPath);
    if (!quiet) std::printf("wrote %s\n", jsonPath.c_str());
  }
  return 0;
}
