// pscp_check — bounded model checker front-end.
//
// Parses a chart + action program + property spec, runs the bounded
// checker (src/analysis/check), prints the property report, and emits the
// machinery the CI gate consumes: the pscp-check-v1 JSON document and one
// pscp-journal-v1 witness file per confirmed violation, each of which
// `pscp_replay verify --chart ...` re-executes independently.
//
//   pscp_check --chart FILE [--actions FILE] --spec FILE [options]
//
//   --chart FILE          statechart source
//   --actions FILE        action-language source (optional)
//   --spec FILE           property spec (see src/analysis/check/spec.hpp)
//   --json FILE           write the pscp-check-v1 report ('-' = stdout)
//   --journal-out PREFIX  write each witness journal to PREFIX<prop>.json
//   --max-states N        node bound (overrides the spec's `bound states`)
//   --max-depth N         depth bound (overrides the spec's `bound depth`)
//   --no-confirm          skip concrete-machine confirmation
//   --no-journals         skip journal lowering
//   --no-replay-verify    skip replay verification of built journals
//   --no-jit-verify       skip the native-tier verification legs
//   --expect-violations   force seeded-violation gate polarity (see below)
//   --quiet               suppress the text report
//
// Exit code: the spec's `expect` declaration (or --expect-violations)
// decides the gate polarity. Expecting pass: 0 iff no property failed.
// Expecting violations: 0 iff at least one property failed AND its
// counterexample survived the whole pipeline — machine-confirmed and
// replay-verified on every tier that was checked. 2 on usage/parse errors.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "actionlang/parser.hpp"
#include "analysis/check/checker.hpp"
#include "analysis/check/spec.hpp"
#include "hwlib/arch_config.hpp"
#include "pscp/machine.hpp"
#include "statechart/parser.hpp"
#include "support/diag.hpp"

using namespace pscp;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --chart FILE [--actions FILE] --spec FILE\n"
      "          [--json FILE] [--journal-out PREFIX]\n"
      "          [--max-states N] [--max-depth N]\n"
      "          [--no-confirm] [--no-journals] [--no-replay-verify]\n"
      "          [--no-jit-verify] [--expect-violations] [--quiet]\n",
      argv0);
  return 2;
}

bool readFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool writeFileText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

/// A counterexample that survived every stage that ran: confirmed on the
/// concrete machine, and replay-verified on each tier that was checked.
bool witnessSolid(const analysis::check::Counterexample& cex,
                  const analysis::check::CheckOptions& opt) {
  if (opt.confirm && !cex.confirmed) return false;
  if (opt.confirm && cex.jitChecked && !cex.jitConfirmed) return false;
  if (opt.buildJournals) {
    if (!cex.journalBuilt) return false;
    if (opt.verifyReplay && !cex.interpVerified) return false;
    if (opt.verifyReplay && opt.verifyJit && cex.jitChecked && !cex.jitVerified)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string chartFile;
  std::string actionsFile;
  std::string specFile;
  std::string jsonFile;
  std::string journalPrefix;
  bool expectViolationsFlag = false;
  bool quiet = false;
  analysis::check::CheckOptions options;
  int maxStatesOverride = -1;
  int maxDepthOverride = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires an argument\n", argv[0], what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--chart") chartFile = value("--chart");
    else if (arg == "--actions") actionsFile = value("--actions");
    else if (arg == "--spec") specFile = value("--spec");
    else if (arg == "--json") jsonFile = value("--json");
    else if (arg == "--journal-out") journalPrefix = value("--journal-out");
    else if (arg == "--max-states") maxStatesOverride = std::atoi(value("--max-states"));
    else if (arg == "--max-depth") maxDepthOverride = std::atoi(value("--max-depth"));
    else if (arg == "--no-confirm") options.confirm = false;
    else if (arg == "--no-journals") options.buildJournals = false;
    else if (arg == "--no-replay-verify") options.verifyReplay = false;
    else if (arg == "--no-jit-verify") options.verifyJit = false;
    else if (arg == "--expect-violations") expectViolationsFlag = true;
    else if (arg == "--quiet") quiet = true;
    else return usage(argv[0]);
  }
  if (chartFile.empty() || specFile.empty()) return usage(argv[0]);

  std::string chartText;
  std::string actionText;
  std::string specText;
  if (!readFile(chartFile, &chartText)) {
    std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], chartFile.c_str());
    return 2;
  }
  if (!actionsFile.empty() && !readFile(actionsFile, &actionText)) {
    std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], actionsFile.c_str());
    return 2;
  }
  if (!readFile(specFile, &specText)) {
    std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], specFile.c_str());
    return 2;
  }

  try {
    const statechart::Chart chart = statechart::parseChart(chartText, chartFile);
    const actionlang::Program actions = actionlang::parseActionSource(
        actionText, actionsFile.empty() ? "<actions>" : actionsFile);

    analysis::check::SpecFile spec =
        analysis::check::parseSpec(specText, specFile);
    analysis::check::bindSpec(&spec, chart);
    if (spec.boundStates) options.maxStates = *spec.boundStates;
    if (spec.boundDepth) options.maxDepth = *spec.boundDepth;
    if (maxStatesOverride > 0) options.maxStates = maxStatesOverride;
    if (maxDepthOverride > 0) options.maxDepth = maxDepthOverride;

    // Compile under the shared analysis arch — the same arch pscp_lint and
    // pscp_replay --chart use, so the journal image hashes agree. Charts
    // that do not compile still get the abstract (model-only) check.
    std::shared_ptr<machine::ChartImage> image;
    try {
      image = std::make_shared<machine::ChartImage>(chart, actions,
                                                    hwlib::analysisArch());
    } catch (const Error& e) {
      if (!quiet)
        std::fprintf(stderr,
                     "pscp_check: note: compile skipped (%s); running "
                     "model-only (no confirmation, no journals)\n",
                     e.what());
    }

    const analysis::check::CheckResult result =
        analysis::check::runBoundedCheck(chart, actions, spec, image, options);

    if (!quiet) std::fputs(result.renderText().c_str(), stdout);
    if (!jsonFile.empty()) {
      const std::string doc = result.renderJson();
      if (jsonFile == "-") {
        std::fputs(doc.c_str(), stdout);
      } else if (!writeFileText(jsonFile, doc)) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], jsonFile.c_str());
        return 2;
      }
    }
    if (!journalPrefix.empty()) {
      for (const analysis::check::PropertyReport& p : result.properties) {
        if (!p.cex.journalBuilt) continue;
        const std::string path = journalPrefix + p.name + ".json";
        std::string err;
        if (!p.cex.journal.writeFile(path, /*binary=*/false, &err)) {
          std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
          return 2;
        }
        if (!quiet)
          std::printf("witness journal for '%s' -> %s\n", p.name.c_str(),
                      path.c_str());
      }
    }

    const bool expectViolations = expectViolationsFlag || spec.expectViolations;
    if (!expectViolations) return result.failCount() == 0 ? 0 : 1;

    // Seeded-violation gate: some property must fail with a witness that
    // survived confirmation and replay on every tier that was checked.
    for (const analysis::check::PropertyReport& p : result.properties)
      if (p.status == analysis::check::PropStatus::Fail &&
          witnessSolid(p.cex, options))
        return 0;
    if (!quiet)
      std::fprintf(stderr,
                   "pscp_check: expected a replay-verified violation, found "
                   "none (%d failed, %d unknown)\n",
                   result.failCount(), result.unknownCount());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
